"""Tests for graph IO and the shared utilities."""

import numpy as np
import pytest

from repro.graph.io import (
    read_edge_list,
    read_embeddings,
    read_labels,
    write_edge_list,
    write_embeddings,
    write_labels,
)
from repro.utils.logging import TrainingHistory
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array_2d,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestGraphIO:
    def test_edge_list_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "edges.txt"
        write_edge_list(small_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert np.array_equal(loaded.edges, small_graph.edges)

    def test_edge_list_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnonsense\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_labels_roundtrip(self, labelled_graph, tmp_path):
        path = tmp_path / "labels.txt"
        write_labels(labelled_graph, path)
        labels = read_labels(path, labelled_graph.num_nodes)
        assert np.array_equal(labels, labelled_graph.labels)

    def test_write_labels_requires_labels(self, small_graph, tmp_path):
        with pytest.raises(ValueError):
            write_labels(small_graph, tmp_path / "labels.txt")

    def test_read_labels_out_of_range(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("99 1\n")
        with pytest.raises(ValueError):
            read_labels(path, 5)

    def test_embeddings_roundtrip(self, tmp_path, rng):
        emb = rng.normal(size=(7, 5))
        path = tmp_path / "emb.txt"
        write_embeddings(emb, path)
        loaded = read_embeddings(path)
        assert loaded.shape == emb.shape
        assert np.allclose(loaded, emb, atol=1e-5)

    def test_write_embeddings_requires_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_embeddings(np.zeros(4), tmp_path / "e.txt")

    def test_read_embeddings_missing_header(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_embeddings(path)


class TestRngHelpers:
    def test_ensure_rng_from_none_int_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        g = ensure_rng(7)
        assert isinstance(g, np.random.Generator)
        assert ensure_rng(g) is g

    def test_ensure_rng_same_seed_same_stream(self):
        assert ensure_rng(3).integers(0, 100, 5).tolist() == ensure_rng(3).integers(0, 100, 5).tolist()

    def test_ensure_rng_rejects_bad_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rngs_independent_but_reproducible(self):
        a1, b1 = spawn_rngs(5, 2)
        a2, b2 = spawn_rngs(5, 2)
        assert a1.integers(0, 1000, 4).tolist() == a2.integers(0, 1000, 4).tolist()
        assert b1.integers(0, 1000, 4).tolist() == b2.integers(0, 1000, 4).tolist()

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)


class TestValidationHelpers:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_in_range(self):
        assert check_in_range(2.0, 1.0, 3.0, "x") == 2.0
        with pytest.raises(ValueError):
            check_in_range(4.0, 1.0, 3.0, "x")

    def test_check_array_2d(self):
        out = check_array_2d([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        with pytest.raises(TypeError):
            check_array_2d(np.zeros(3), "m")
        with pytest.raises(ValueError):
            check_array_2d(np.array([[np.nan, 1.0]]), "m")


class TestTrainingHistory:
    def test_record_and_query(self):
        hist = TrainingHistory()
        hist.record("loss", 1.0)
        hist.record("loss", 0.5)
        assert hist.get("loss") == [1.0, 0.5]
        assert hist.last("loss") == 0.5
        assert "loss" in hist
        assert "missing" not in hist
        assert len(hist) == 1

    def test_last_missing_raises(self):
        with pytest.raises(KeyError):
            TrainingHistory().last("loss")

    def test_get_missing_returns_empty(self):
        assert TrainingHistory().get("nothing") == []
