"""Tests for the unified estimator API: registry, protocol, specs, runners."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    ExperimentCell,
    ExperimentSpec,
    GraphEmbedder,
    ModelSpec,
    get_entry,
    list_models,
    make_model,
)
from repro.experiments import ExperimentSettings
from repro.experiments.runners import (
    run_spec,
    settings_model,
    settings_overrides,
    spec_from_settings,
)
from repro.graph.datasets import load_dataset
from repro.graph.sampling import AliasTable, EdgeSampler, unigram_weights

ALL_MODELS = (
    "advsgm",
    "advsgm-nodp",
    "sgm",
    "deepwalk",
    "node2vec",
    "dpsgm",
    "dpasgm",
    "dpggan",
    "dpgvae",
    "gap",
    "dpar",
)

#: Tiny schedules so every model fits a 100-node graph in well under a second.
FAST_OVERRIDES = {
    "advsgm": dict(num_epochs=1, discriminator_steps=2, generator_steps=1,
                   batch_size=4, embedding_dim=8),
    "advsgm-nodp": dict(num_epochs=1, discriminator_steps=2, generator_steps=1,
                        batch_size=4, embedding_dim=8),
    "sgm": dict(num_epochs=1, batches_per_epoch=2, batch_size=8, embedding_dim=8),
    "deepwalk": dict(num_walks=1, walk_length=5, num_epochs=1, embedding_dim=8,
                     batch_size=64),
    "node2vec": dict(num_walks=1, walk_length=5, num_epochs=1, embedding_dim=8,
                     batch_size=64, p=0.5, q=2.0),
    "dpsgm": dict(num_epochs=1, batches_per_epoch=2, batch_size=4, embedding_dim=8),
    "dpasgm": dict(num_epochs=1, batches_per_epoch=2, batch_size=4, embedding_dim=8,
                   generator_steps=1),
    "dpggan": dict(num_epochs=1, batches_per_epoch=2, batch_size=8, embedding_dim=8),
    "dpgvae": dict(num_epochs=1, batches_per_epoch=2, batch_size=8, embedding_dim=8,
                   feature_dim=8),
    "gap": dict(num_epochs=1, embedding_dim=8, feature_dim=8, batch_size=32),
    "dpar": dict(num_epochs=1, embedding_dim=8, feature_dim=8, batch_size=32),
}


@pytest.fixture(scope="module")
def tiny_graph():
    return load_dataset("ppi", scale=0.1, seed=7)


class TestRegistry:
    def test_all_models_listed(self):
        assert set(list_models()) == set(ALL_MODELS)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_construct_fit_roundtrip(self, name, tiny_graph):
        """Every registered name constructs, fits, and round-trips params."""
        overrides = FAST_OVERRIDES[name]
        entry = get_entry(name)
        epsilon = 6.0 if entry.private else None
        model = make_model(name, epsilon=epsilon, rng=0, **overrides)

        params = model.get_params()
        for key, value in overrides.items():
            assert params[key] == value
        if entry.private:
            assert params["epsilon"] == 6.0

        model.fit(tiny_graph)
        assert isinstance(model, GraphEmbedder)
        assert model.embeddings_.shape == (tiny_graph.num_nodes,
                                           overrides["embedding_dim"])
        scores = model.score_edges(np.array([[0, 1], [2, 3]]))
        assert scores.shape == (2,)
        # get_params is a plain dict that reconstructs the same config.
        rebuilt = entry.config_cls(**model.get_params())
        assert rebuilt == model.config

    def test_aliases_resolve(self):
        assert get_entry("DP-SGM").name == "dpsgm"
        assert get_entry("SGM(No DP)").name == "sgm"
        assert get_entry("AdvSGM(No DP)").name == "advsgm-nodp"

    def test_unknown_model_and_field(self):
        with pytest.raises(KeyError):
            make_model("nope")
        with pytest.raises(TypeError):
            make_model("advsgm", not_a_field=1)

    def test_epsilon_rejected_for_nonprivate(self):
        with pytest.raises(ValueError):
            make_model("deepwalk", epsilon=1.0)

    def test_set_params_before_bind_only(self, tiny_graph):
        model = make_model("sgm", **FAST_OVERRIDES["sgm"])
        model.set_params(num_epochs=2)
        assert model.get_params()["num_epochs"] == 2
        model.fit(tiny_graph)
        with pytest.raises(RuntimeError):
            model.set_params(num_epochs=3)

    def test_graph_at_construction_equals_graph_at_fit(self, tiny_graph):
        """Deferred binding is seed-for-seed identical to eager binding."""
        kwargs = dict(epsilon=6.0, rng=3, **FAST_OVERRIDES["advsgm"])
        eager = make_model("advsgm", graph=tiny_graph, **kwargs).fit()
        lazy = make_model("advsgm", **kwargs).fit(tiny_graph)
        np.testing.assert_array_equal(eager.embeddings_, lazy.embeddings_)

    def test_fit_without_graph_raises(self):
        with pytest.raises(RuntimeError):
            make_model("sgm").fit()

    def test_fit_rejects_non_graph_positional(self):
        """Legacy positional-callbacks calls get a clear TypeError."""
        with pytest.raises(TypeError, match="callbacks"):
            make_model("sgm").fit([object()])

    def test_rebind_different_graph_raises(self, tiny_graph):
        other = load_dataset("wiki", scale=0.1, seed=1)
        model = make_model("sgm", graph=tiny_graph, **FAST_OVERRIDES["sgm"])
        with pytest.raises(RuntimeError):
            model.fit(other)

    def test_gap_dpar_accept_callbacks(self, tiny_graph):
        from repro.train import Callback

        calls = []

        class Recorder(Callback):
            def on_epoch_end(self, epoch, losses):
                calls.append(epoch)

        for name in ("gap", "dpar"):
            make_model(name, epsilon=6.0, rng=0, **FAST_OVERRIDES[name]).fit(
                tiny_graph, callbacks=[Recorder()]
            )
        assert calls  # both models drove the shared loop's callbacks


class TestSpec:
    def _spec(self, **kwargs):
        defaults = dict(
            task="link_prediction",
            datasets=("ppi",),
            models=(ModelSpec("advsgm", overrides=FAST_OVERRIDES["advsgm"]),),
            epsilons=(1.0, 6.0),
            repeats=2,
            base_seed=11,
            dataset_scale=0.1,
        )
        defaults.update(kwargs)
        return ExperimentSpec(**defaults)

    def test_cells_carry_derived_seeds(self):
        spec = self._spec()
        cells = spec.cells()
        assert len(cells) == 1 * 1 * 2 * 2
        assert {c.seed for c in cells} == {11, 11 + 7919}
        assert all(c.dataset_seed == 11 for c in cells)

    def test_roundtrip_dict(self):
        spec = self._spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        cell = spec.cells()[0]
        assert ExperimentCell.from_dict(cell.to_dict()) == cell

    def test_validation(self):
        with pytest.raises(ValueError):
            self._spec(task="nope")
        with pytest.raises(ValueError):
            ExperimentCell(task="nope", dataset="ppi", model=ModelSpec("sgm"),
                           epsilon=None, repeat=0, seed=0)
        with pytest.raises(ValueError):
            self._spec(datasets=())
        with pytest.raises(ValueError):
            self._spec(epsilons=())
        with pytest.raises(ValueError):
            self._spec(repeats=0)

    def test_model_spec_coercion(self):
        spec = self._spec(models=("sgm", {"name": "deepwalk", "label": "DW"}))
        assert spec.models[0].display == "sgm"
        assert spec.models[1].display == "DW"


class TestRunSpec:
    @pytest.fixture(scope="class")
    def small_spec(self):
        settings = ExperimentSettings.smoke()
        return spec_from_settings(
            "link_prediction",
            ("ppi",),
            ("AdvSGM", "DPAR"),
            settings,
            epsilons=(1.0,),
            repeats=2,
        )

    def test_parallel_identical_to_serial(self, small_spec):
        serial = run_spec(small_spec, workers=1)
        parallel = run_spec(small_spec, workers=2)
        assert serial == parallel
        assert len(serial) == 4  # 2 models x 1 epsilon x 2 repeats
        seeds = {row["seed"] for row in serial}
        assert seeds == {2025, 2025 + 7919}

    def test_settings_overrides_are_data(self):
        settings = ExperimentSettings.smoke()
        overrides = settings_overrides("advsgm", settings)
        assert overrides["batch_size"] == settings.dp_batch_size
        assert overrides["num_epochs"] == settings.dp_epochs
        # Non-DP variant swaps the epoch budget and fixes the batch size.
        nodp = settings_overrides("advsgm-nodp", settings)
        assert nodp["num_epochs"] == settings.nodp_epochs
        assert nodp["batch_size"] == 128

    def test_settings_model_merges_extras(self):
        settings = ExperimentSettings.smoke()
        spec = settings_model("advsgm", settings, label="lr=0.2",
                              learning_rate_d=0.2)
        overrides = dict(spec.overrides)
        assert overrides["learning_rate_d"] == 0.2
        assert spec.display == "lr=0.2"


class TestAliasSampling:
    def test_alias_table_matches_weights(self):
        weights = np.array([1.0, 2.0, 0.0, 5.0])
        table = AliasTable(weights)
        draws = table.draw(np.random.default_rng(0), size=20000)
        counts = np.bincount(draws, minlength=4) / 20000
        expected = weights / weights.sum()
        assert counts[2] == 0.0
        np.testing.assert_allclose(counts, expected, atol=0.02)

    def test_unigram_sampler_prefers_hubs(self, tiny_graph):
        uniform = EdgeSampler(tiny_graph, batch_size=64, num_negatives=5, rng=0)
        weighted = EdgeSampler(
            tiny_graph, batch_size=64, num_negatives=5, rng=0,
            negative_distribution="unigram075",
        )
        deg = tiny_graph.degrees

        def mean_negative_degree(sampler):
            total, n = 0.0, 0
            for _ in range(30):
                batch = sampler.sample()
                total += deg[batch.negative_pairs[:, 1]].sum()
                n += batch.negative_pairs.shape[0]
            return total / n

        # Degree^0.75-weighted draws hit high-degree nodes more often.
        assert mean_negative_degree(weighted) > mean_negative_degree(uniform) + 0.5

    def test_invalid_distribution_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            EdgeSampler(tiny_graph, batch_size=4, negative_distribution="zipf")
        from repro.embedding.skipgram import SkipGramConfig

        with pytest.raises(ValueError):
            SkipGramConfig(negative_distribution="zipf")

    def test_uniform_default_unchanged(self, tiny_graph):
        """The default distribution stays what the DP analysis assumes."""
        sampler = EdgeSampler(tiny_graph, batch_size=4, rng=0)
        assert sampler.negative_distribution == "uniform"
        assert sampler._negative_table is None

    def test_unigram_weights(self):
        np.testing.assert_allclose(
            unigram_weights(np.array([0, 1, 16])), [0.0, 1.0, 8.0]
        )


class TestPairDtype:
    def test_int32_pairs_for_small_graphs(self, tiny_graph):
        from repro.graph.random_walk import walks_to_pairs

        matrix = tiny_graph.walk_engine().walk_corpus(1, 8, rng=0)
        pairs = walks_to_pairs(matrix, window_size=3)
        assert pairs.dtype == np.int32
        # Same multiset as the int64 path on the padded list form.
        as_lists = [row[row >= 0].tolist() for row in matrix]
        pairs_ragged = walks_to_pairs(as_lists, window_size=3)
        assert pairs_ragged.dtype == np.int32
        key = lambda p: sorted(map(tuple, p.tolist()))
        assert key(pairs) == key(pairs_ragged)
