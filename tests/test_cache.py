"""Tests for the content-addressed experiment cache and resumable sweeps.

The correctness contract is reproducibility:

* a cache hit is bit-for-bit identical to recomputing the cell;
* an interrupted ``run_spec`` that is resumed produces results bit-for-bit
  identical to an uninterrupted serial run (for serial and parallel runs);
* mutating any cell field misses; stale-schema entries are ignored, never
  raised.
"""

import json
import multiprocessing
import pickle
import random
import threading

import numpy as np
import pytest

from repro.api import ExperimentCell, ExperimentSpec, ModelSpec
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ResultStore,
    canonical_cell_dict,
    cell_key,
    default_cache_dir,
    resolve_store,
    spec_key,
)
from repro.experiments.runners import _compute_cell, run_cell, run_spec

#: Tiny deepwalk schedule: one cell trains in well under a second.
FAST_DEEPWALK = dict(
    num_walks=1, walk_length=5, num_epochs=1, embedding_dim=8, batch_size=64
)


def tiny_cell(**changes):
    defaults = dict(
        task="link_prediction",
        dataset="ppi",
        model=ModelSpec("deepwalk", overrides=FAST_DEEPWALK),
        epsilon=None,
        repeat=0,
        seed=11,
        dataset_scale=0.1,
        dataset_seed=11,
        test_fraction=0.1,
    )
    defaults.update(changes)
    return ExperimentCell(**defaults)


def tiny_spec(repeats=4):
    return ExperimentSpec(
        task="link_prediction",
        datasets=("ppi",),
        models=(ModelSpec("deepwalk", overrides=FAST_DEEPWALK),),
        epsilons=(None,),
        repeats=repeats,
        base_seed=11,
        dataset_scale=0.1,
    )


class SentinelError(RuntimeError):
    """Stands in for a crash/kill that interrupts a sweep mid-flight."""


class ExplodingStore(ResultStore):
    """A store whose ``put`` dies after K successful writes.

    Interrupting at the persistence step models a killed sweep: some cells
    completed and were stored, the rest were lost — for both the serial and
    the process-pool paths, because ``run_spec`` always persists results in
    the parent process.
    """

    def __init__(self, root, fail_after):
        super().__init__(root)
        self.remaining = fail_after

    def put(self, cell, row, **kwargs):
        if self.remaining <= 0:
            raise SentinelError("sweep interrupted")
        self.remaining -= 1
        return super().put(cell, row, **kwargs)


# ---------------------------------------------------------------------------
# keys: canonicalisation and invalidation
# ---------------------------------------------------------------------------
class TestCellKey:
    def test_key_is_stable_sha256(self):
        key = cell_key(tiny_cell())
        assert len(key) == 64 and int(key, 16) >= 0
        assert key == cell_key(tiny_cell())

    def test_numpy_scalars_hash_like_python(self):
        np_cell = ExperimentCell(
            task="link_prediction",
            dataset="ppi",
            model=ModelSpec(
                "deepwalk",
                overrides={
                    "num_walks": np.int64(1), "walk_length": np.int32(5),
                    "num_epochs": np.int16(1), "embedding_dim": np.int64(8),
                    "batch_size": np.int64(64),
                },
            ),
            epsilon=None,
            repeat=np.int64(0),
            seed=np.int64(11),
            dataset_scale=np.float64(0.1),
            dataset_seed=np.int64(11),
        )
        assert np_cell == tiny_cell()
        assert cell_key(np_cell) == cell_key(tiny_cell())

    def test_override_order_does_not_matter(self):
        forward = ModelSpec("deepwalk", overrides=list(FAST_DEEPWALK.items()))
        backward = ModelSpec(
            "deepwalk", overrides=list(reversed(list(FAST_DEEPWALK.items())))
        )
        assert forward == backward
        assert cell_key(tiny_cell(model=forward)) == cell_key(tiny_cell(model=backward))

    def test_model_aliases_hash_identically(self):
        plain = tiny_cell(model=ModelSpec("advsgm"), epsilon=6.0)
        alias = tiny_cell(model=ModelSpec("AdvSGM"), epsilon=6.0)
        assert cell_key(plain) == cell_key(alias)
        assert canonical_cell_dict(alias)["model"]["name"] == "advsgm"

    def test_int_epsilon_hashes_like_float(self):
        assert cell_key(tiny_cell(epsilon=6)) == cell_key(tiny_cell(epsilon=6.0))

    def test_negative_zero_normalised(self):
        a = tiny_cell(model=ModelSpec("deepwalk", overrides={"learning_rate": -0.0}))
        b = tiny_cell(model=ModelSpec("deepwalk", overrides={"learning_rate": 0.0}))
        assert cell_key(a) == cell_key(b)

    @pytest.mark.parametrize(
        "changes",
        [
            dict(epsilon=6.0),
            dict(seed=12),
            dict(repeat=1),
            dict(dataset="wiki"),
            dict(task="node_clustering"),
            dict(dataset_scale=0.2),
            dict(dataset_seed=99),
            dict(test_fraction=0.2),
            dict(model=ModelSpec("node2vec", overrides=FAST_DEEPWALK)),
            dict(model=ModelSpec("deepwalk", overrides={**FAST_DEEPWALK, "num_epochs": 2})),
        ],
    )
    def test_any_field_mutation_misses(self, changes, tmp_path):
        base = tiny_cell()
        mutated = tiny_cell(**changes)
        assert cell_key(base) != cell_key(mutated)
        store = ResultStore(tmp_path)
        store.put(base, {"auc": 0.5})
        assert store.get(mutated) is None
        assert store.stats.misses == 1

    def test_label_is_part_of_the_key(self):
        # The cached row records the display label, so a different label is
        # a different (row-producing) cell even if the numbers would agree.
        labelled = tiny_cell(model=ModelSpec("deepwalk", label="DW", overrides=FAST_DEEPWALK))
        assert cell_key(labelled) != cell_key(tiny_cell())


class TestGraphPlacementKeys:
    """Graph placement is canonicalised like compute placement.

    ``on_disk`` moves bit-identical arrays to mmap buffers (parity is pinned
    in tests/test_storage.py), so it must never split the cache; a
    ``graph_path`` resolves to the referenced graph's *content* fingerprint,
    so two different graphs filed under the same dataset name can never
    alias — and moving a graph directory never invalidates its entries.
    """

    def test_on_disk_flag_does_not_change_the_key(self):
        assert cell_key(tiny_cell(on_disk=True)) == cell_key(tiny_cell())
        assert "on_disk" not in canonical_cell_dict(tiny_cell(on_disk=True))

    def test_same_name_different_graphs_never_alias(self, tmp_path):
        from repro.graph.datasets import load_dataset

        for sub, scale in (("a", 0.1), ("b", 0.12)):
            load_dataset("ppi", scale=scale).save(tmp_path / sub)
        cell_a = tiny_cell(graph_path=str(tmp_path / "a"))
        cell_b = tiny_cell(graph_path=str(tmp_path / "b"))
        assert cell_a.dataset == cell_b.dataset == "ppi"
        assert cell_key(cell_a) != cell_key(cell_b)

    def test_graph_path_hashes_by_content_not_location(self, tmp_path):
        import shutil

        from repro.graph.datasets import load_dataset

        load_dataset("ppi", scale=0.1).save(tmp_path / "a")
        shutil.copytree(tmp_path / "a", tmp_path / "moved")
        assert cell_key(tiny_cell(graph_path=str(tmp_path / "a"))) == cell_key(
            tiny_cell(graph_path=str(tmp_path / "moved"))
        )
        canon = canonical_cell_dict(tiny_cell(graph_path=str(tmp_path / "a")))
        assert "graph_path" not in canon
        assert len(canon["graph_fingerprint"]) == 64


class TestRoundTripDeterminism:
    def test_to_dict_sorted_and_plain(self):
        cell = tiny_cell(
            model=ModelSpec("deepwalk", overrides={"walk_length": np.int64(5), "num_walks": 1})
        )
        overrides = cell.to_dict()["model"]["overrides"]
        assert list(overrides) == sorted(overrides)
        assert all(type(v) in (int, float, bool, str, tuple) for v in overrides.values())

    def test_json_roundtrip_rehashes_identically(self):
        cell = tiny_cell(epsilon=6.0)
        bounced = ExperimentCell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert bounced == cell
        assert cell_key(bounced) == cell_key(cell)

    def test_property_random_cells_rehash_after_roundtrip(self):
        """from_dict(to_dict(cell)) re-hashes identically, 100 random cells."""
        rng = random.Random(20250731)
        models = ("deepwalk", "advsgm", "sgm", "node2vec", "dpar")
        for _ in range(100):
            overrides = {}
            for field_name in rng.sample(
                ["embedding_dim", "num_epochs", "batch_size", "learning_rate",
                 "walk_length", "num_walks"],
                k=rng.randint(0, 4),
            ):
                overrides[field_name] = rng.choice(
                    [rng.randint(1, 512), rng.random(), np.int64(rng.randint(1, 64)),
                     np.float64(rng.random())]
                )
            name = rng.choice(models)
            cell = ExperimentCell(
                task=rng.choice(("link_prediction", "node_clustering", "none")),
                dataset=rng.choice(("ppi", "wiki", "blog")),
                model=ModelSpec(name, label=rng.choice([None, name.upper()]),
                                overrides=overrides),
                epsilon=rng.choice([None, rng.randint(1, 6), rng.random() * 6]),
                repeat=rng.randint(0, 5),
                seed=rng.randint(0, 2**31),
                dataset_scale=rng.choice([0.1, 0.5, 1.0]),
                dataset_seed=rng.choice([None, rng.randint(0, 1000)]),
                test_fraction=rng.uniform(0.05, 0.5),
            )
            bounced = ExperimentCell.from_dict(json.loads(json.dumps(cell.to_dict())))
            assert bounced == cell
            assert cell_key(bounced) == cell_key(cell)


# ---------------------------------------------------------------------------
# store behaviour
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_put_get_roundtrip_bit_for_bit(self, tmp_path):
        cell = tiny_cell()
        row, _, wall = _compute_cell(cell)
        store = ResultStore(tmp_path)
        key = store.put(cell, row, wall_time=wall)
        loaded = store.get(cell)
        assert loaded == row
        assert loaded is not row  # a copy, not shared mutable state
        assert cell in store and len(store) == 1
        manifest = store.manifest(cell)
        assert manifest.key == key
        assert manifest.schema_version == CACHE_SCHEMA_VERSION
        assert manifest.cell == canonical_cell_dict(cell)
        assert manifest.wall_time_s == pytest.approx(wall)
        assert manifest.created_at  # ISO timestamp recorded

    def test_embeddings_roundtrip(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        row = run_cell(cell, cache=store, store_embeddings=True)
        cached_embeddings = store.load_embeddings(cell)
        recomputed_row, recomputed_embeddings, _ = _compute_cell(
            cell, capture_embeddings=True
        )
        assert row == recomputed_row
        np.testing.assert_array_equal(cached_embeddings, recomputed_embeddings)
        assert store.manifest(cell).has_embeddings

    def test_store_embeddings_recomputes_embeddingless_hit(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        plain_row = run_cell(cell, cache=store)  # warm without embeddings
        assert store.load_embeddings(cell) is None
        row = run_cell(cell, cache=store, store_embeddings=True)
        assert row == plain_row  # recompute is bit-for-bit the same row
        assert store.load_embeddings(cell) is not None
        assert store.stats.writes == 2  # entry was recomputed + overwritten
        # And now it hits without recomputation.
        run_cell(cell, cache=store, store_embeddings=True)
        assert store.stats.writes == 2

    def test_overwrite_without_embeddings_removes_stale_npz(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        run_cell(cell, cache=store, store_embeddings=True)
        assert any((tmp_path / "entries").rglob("*.npz"))
        run_cell(cell, cache=store, force=True)  # overwrite, no embeddings
        assert not any((tmp_path / "entries").rglob("*.npz"))
        assert not store.manifest(cell).has_embeddings
        assert store.load_embeddings(cell) is None

    def test_clear_sweeps_orphaned_npz(self, tmp_path):
        store = ResultStore(tmp_path)
        run_cell(tiny_cell(), cache=store, store_embeddings=True)
        # Simulate a crash between the npz write and the entry write.
        orphan = tmp_path / "entries" / "00" / ("f" * 64 + ".npz")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"")
        assert store.clear() == 1
        assert not any((tmp_path / "entries").rglob("*.npz"))

    def test_no_embeddings_by_default(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        run_cell(cell, cache=store)
        assert store.load_embeddings(cell) is None
        assert not store.manifest(cell).has_embeddings

    def test_stale_schema_ignored_not_crash(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        store.put(cell, {"auc": 0.75})
        path = store._entry_path(store.key(cell))
        entry = json.loads(path.read_text())
        entry["manifest"]["schema_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        fresh = ResultStore(tmp_path)
        assert fresh.get(cell) is None
        assert fresh.stats.stale == 1
        assert fresh.stats.misses == 1
        # The report surface agrees with get(): stale entries are invisible,
        # so a listing never advertises work a sweep would recompute anyway.
        assert list(fresh.entries()) == []
        assert len(fresh) == 0

    def test_manifest_missing_fields_is_defensive(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        store.put(cell, {"auc": 0.5})
        path = store._entry_path(store.key(cell))
        entry = json.loads(path.read_text())
        entry["manifest"] = {"schema_version": CACHE_SCHEMA_VERSION}
        path.write_text(json.dumps(entry))
        fresh = ResultStore(tmp_path)
        assert fresh.get(cell) == {"auc": 0.5}  # the row itself is intact
        assert fresh.manifest(cell) is None  # no TypeError on missing fields

    def test_corrupt_entry_ignored_not_crash(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        store.put(cell, {"auc": 0.75})
        store._entry_path(store.key(cell)).write_text("{not json")
        fresh = ResultStore(tmp_path)
        assert fresh.get(cell) is None
        assert fresh.stats.stale == 1
        assert list(fresh.entries()) == []  # report iteration skips it too

    def test_clear_removes_entries_and_embeddings(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        run_cell(cell, cache=store, store_embeddings=True)
        assert store.clear() == 1
        assert len(store) == 0
        assert not any((tmp_path / "entries").rglob("*.npz"))

    def test_resolve_store(self, tmp_path, monkeypatch):
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(tmp_path).root == tmp_path
        assert resolve_store(str(tmp_path)).root == tmp_path
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_store(True).root == tmp_path / "env"
        assert default_cache_dir() == tmp_path / "env"


# ---------------------------------------------------------------------------
# run_cell / run_spec caching semantics
# ---------------------------------------------------------------------------
class TestRunWithCache:
    def test_cache_hit_equals_recompute(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        computed = run_cell(cell, cache=store)
        cached = run_cell(cell, cache=store)
        fresh = run_cell(cell)  # no cache at all
        assert computed == cached == fresh
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_force_recomputes_and_overwrites(self, tmp_path):
        cell = tiny_cell()
        store = ResultStore(tmp_path)
        run_cell(cell, cache=store)
        forced = run_cell(cell, cache=store, force=True)
        assert store.stats.writes == 2
        assert forced == store.get(cell)

    def test_fully_cached_spec_computes_zero_cells(self, tmp_path):
        spec = tiny_spec(repeats=3)
        first = run_spec(spec, cache=ResultStore(tmp_path))
        rerun_store = ResultStore(tmp_path)
        second = run_spec(spec, cache=rerun_store)
        assert second == first
        assert rerun_store.stats.hits == 3
        assert rerun_store.stats.writes == 0  # zero cells computed

    def test_resume_false_recomputes_without_reading(self, tmp_path):
        spec = tiny_spec(repeats=2)
        run_spec(spec, cache=ResultStore(tmp_path))
        store = ResultStore(tmp_path)
        rows = run_spec(spec, cache=store, resume=False)
        assert store.stats.hits == 0 and store.stats.writes == 2
        assert rows == run_spec(spec)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_sweep_resumes_bit_for_bit(self, tmp_path, workers):
        """Kill after K cells, resume, compare to an uninterrupted serial run."""
        spec = tiny_spec(repeats=4)
        uninterrupted = run_spec(spec)  # serial, no cache: the reference

        exploding = ExplodingStore(tmp_path, fail_after=2)
        with pytest.raises(SentinelError):
            run_spec(spec, workers=workers, cache=exploding)
        assert len(ResultStore(tmp_path)) == 2  # exactly K cells survived

        resume_store = ResultStore(tmp_path)
        merged = run_spec(spec, workers=workers, cache=resume_store)
        assert merged == uninterrupted
        assert resume_store.stats.hits == 2
        assert resume_store.stats.writes == 2  # only the lost cells recomputed

        # And a third pass is fully cached, still bit-for-bit identical.
        final_store = ResultStore(tmp_path)
        assert run_spec(spec, workers=workers, cache=final_store) == uninterrupted
        assert final_store.stats.writes == 0

    def test_parallel_sibling_results_survive_one_failing_cell(self, tmp_path):
        """A failing cell must not discard its siblings' finished work."""
        good_model = ModelSpec("deepwalk", overrides=FAST_DEEPWALK)
        bad_model = ModelSpec(
            "deepwalk", label="bad",
            overrides={**FAST_DEEPWALK, "walk_length": -1},  # rejected by config
        )
        spec = ExperimentSpec(
            task="link_prediction", datasets=("ppi",),
            models=(good_model, bad_model), epsilons=(None,),
            repeats=2, base_seed=11, dataset_scale=0.1,
        )
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            run_spec(spec, workers=2, cache=store)
        assert store.stats.writes == 2  # both good cells persisted
        good_spec = spec.with_(models=(good_model,))
        resume_store = ResultStore(tmp_path)
        resumed = run_spec(good_spec, workers=2, cache=resume_store)
        assert resume_store.stats.hits == 2  # nothing good was recomputed
        assert resumed == run_spec(good_spec)

    def test_parallel_cached_equals_serial_cached(self, tmp_path):
        spec = tiny_spec(repeats=3)
        serial = run_spec(spec, cache=ResultStore(tmp_path / "serial"))
        parallel = run_spec(spec, workers=2, cache=ResultStore(tmp_path / "parallel"))
        assert serial == parallel

    def test_fig3_spec_fully_cached_on_second_run(self, tmp_path):
        """Acceptance: re-running a fully cached fig3 spec computes zero cells."""
        from repro.experiments import ExperimentSettings, fig3_link_prediction

        settings = ExperimentSettings.smoke()
        kwargs = dict(datasets=("ppi",), models=("AdvSGM",), epsilons=(1.0,))
        first = fig3_link_prediction.run(
            settings, cache=ResultStore(tmp_path), **kwargs
        )
        store = ResultStore(tmp_path)
        second = fig3_link_prediction.run(settings, cache=store, **kwargs)
        assert second == first
        assert store.stats.writes == 0  # zero cells computed
        assert store.stats.hits == 1
        uncached = fig3_link_prediction.run(settings, **kwargs)
        assert uncached == second  # hit == recompute, through the driver too


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCacheCli:
    def run_fig3(self, tmp_path, *extra):
        from repro.cli import main

        return main([
            "experiment", "fig3", "--preset", "smoke", "--dataset", "ppi",
            "--models", "AdvSGM", "--epsilons", "6",
            "--cache-dir", str(tmp_path), *extra,
        ])

    def test_experiment_cache_flags(self, tmp_path, capsys):
        assert self.run_fig3(tmp_path) == 0
        assert "0 loaded / 1 computed" in capsys.readouterr().out
        assert self.run_fig3(tmp_path) == 0
        assert "1 loaded / 0 computed" in capsys.readouterr().out
        assert self.run_fig3(tmp_path, "--force") == 0
        assert "0 loaded / 1 computed" in capsys.readouterr().out

    def test_force_without_cache_is_an_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["experiment", "fig3", "--preset", "smoke", "--dataset", "ppi",
                  "--models", "AdvSGM", "--epsilons", "6", "--force"])

    def test_fig2_rejects_cache_flags(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["experiment", "fig2", "--preset", "smoke",
                  "--cache-dir", str(tmp_path)])

    def test_cache_report_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path)
        run_cell(tiny_cell(), cache=store)
        report_json = tmp_path / "manifest.json"
        assert main(["cache", "report", "--cache-dir", str(tmp_path),
                     "--json", str(report_json)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "deepwalk" in out
        # The --json format is the same report dict the service serves at
        # GET /cache: root, schema version, count, entries, stats.
        report = json.loads(report_json.read_text())
        assert report == ResultStore(tmp_path).report()
        assert report["count"] == 1
        assert report["schema_version"] == CACHE_SCHEMA_VERSION
        assert len(report["entries"]) == 1
        assert report["entries"][0]["schema_version"] == CACHE_SCHEMA_VERSION
        assert set(report["stats"]) == {"hits", "misses", "writes", "stale"}
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert len(ResultStore(tmp_path)) == 0


# ---------------------------------------------------------------------------
# spec identity
# ---------------------------------------------------------------------------
class TestSpecKey:
    def test_stable_and_round_trips_through_dict(self):
        spec = tiny_spec()
        assert spec_key(spec) == spec_key(spec)
        assert spec_key(ExperimentSpec.from_dict(spec.to_dict())) == spec_key(spec)
        assert len(spec_key(spec)) == 64

    def test_same_cell_set_same_id_regardless_of_model_order(self):
        # Spec identity is the *set* of cell keys, so reordering the grid
        # axes does not mint a new spec id (same work == same spec).
        small = ModelSpec("deepwalk", overrides=FAST_DEEPWALK)
        wide = ModelSpec(
            "deepwalk", overrides={**FAST_DEEPWALK, "embedding_dim": 16}
        )
        forward = tiny_spec()
        ab = ExperimentSpec(**{**forward.to_dict(), "models": (small, wide)})
        ba = ExperimentSpec(**{**forward.to_dict(), "models": (wide, small)})
        assert spec_key(ab) == spec_key(ba)

    def test_different_work_different_id(self):
        base = tiny_spec(repeats=2)
        assert spec_key(base) != spec_key(tiny_spec(repeats=3))
        reseeded = ExperimentSpec(**{**base.to_dict(), "base_seed": 12})
        assert spec_key(base) != spec_key(reseeded)


# ---------------------------------------------------------------------------
# concurrent writers (the service's workers all report into one store)
# ---------------------------------------------------------------------------
def _hammer_put(root, cell, barrier, rounds):
    """Child-process body: repeatedly put the same cell into a shared store."""
    store = ResultStore(root)
    embeddings = np.arange(12, dtype=np.float64).reshape(4, 3)
    barrier.wait(timeout=30)  # maximise write overlap between the writers
    for i in range(rounds):
        store.put(cell, {"auc": 0.5, "round": i}, embeddings=embeddings)


class TestConcurrentWriters:
    @pytest.mark.timeout(120)
    def test_two_processes_put_the_same_cell_concurrently(self, tmp_path):
        """Both writers land: the entry stays valid and readable throughout.

        The store's atomic temp-file + ``os.replace`` writes mean concurrent
        same-key puts can interleave in any order and the survivor is always
        one writer's complete, coherent entry (last write wins) — never a
        torn mix of both.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        ctx = multiprocessing.get_context("fork")
        cell = tiny_cell()
        rounds = 25
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(target=_hammer_put, args=(tmp_path, cell, barrier, rounds))
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)

        store = ResultStore(tmp_path)
        assert len(store) == 1  # one content-address, however many writers
        row = store.get(cell)
        assert row is not None
        assert row["auc"] == 0.5 and row["round"] == rounds - 1
        np.testing.assert_array_equal(
            store.load_embeddings(cell),
            np.arange(12, dtype=np.float64).reshape(4, 3),
        )
        manifests = list(store.entries())
        assert len(manifests) == 1
        assert manifests[0]["key"] == cell_key(cell)

    def test_cache_stats_counting_is_thread_safe(self, tmp_path):
        store = ResultStore(tmp_path)
        threads = [
            threading.Thread(
                target=lambda: [store.stats.count("hits") for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats.hits == 8000
        assert store.stats.as_dict() == {
            "hits": 8000, "misses": 0, "writes": 0, "stale": 0
        }

    def test_cache_stats_rejects_unknown_counter(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).stats.count("nonsense")

    def test_cache_stats_pickles_without_its_lock(self, tmp_path):
        stats = ResultStore(tmp_path).stats
        stats.count("writes", 3)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.writes == 3
        clone.count("writes")  # the clone got a fresh, working lock
        assert clone.writes == 4
