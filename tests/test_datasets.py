"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro.graph.datasets import DatasetSpec, get_spec, list_datasets, load_dataset


class TestRegistry:
    def test_all_six_datasets_registered(self):
        names = list_datasets()
        assert names == sorted(["ppi", "facebook", "wiki", "blog", "epinions", "dblp"])

    def test_get_spec_case_insensitive(self):
        assert get_spec("PPI").name == "ppi"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("imaginary")

    def test_specs_record_paper_sizes(self):
        spec = get_spec("ppi")
        assert isinstance(spec, DatasetSpec)
        assert spec.paper_nodes == 3890
        assert spec.paper_edges == 76584


class TestLoading:
    @pytest.mark.parametrize("name", ["ppi", "facebook", "wiki", "blog", "epinions", "dblp"])
    def test_load_small_scale(self, name):
        g = load_dataset(name, scale=0.1, seed=1)
        assert g.num_nodes >= 64
        assert g.num_edges > g.num_nodes  # denser than a tree
        assert g.name == name

    def test_labelled_datasets_have_labels(self):
        for name in ("ppi", "wiki", "blog"):
            g = load_dataset(name, scale=0.1, seed=1)
            assert g.labels is not None

    def test_unlabelled_datasets_have_no_labels(self):
        for name in ("facebook", "epinions", "dblp"):
            g = load_dataset(name, scale=0.1, seed=1)
            assert g.labels is None

    def test_deterministic_default_seed(self):
        g1 = load_dataset("ppi", scale=0.1)
        g2 = load_dataset("ppi", scale=0.1)
        assert np.array_equal(g1.edges, g2.edges)

    def test_seed_changes_graph(self):
        g1 = load_dataset("ppi", scale=0.1, seed=1)
        g2 = load_dataset("ppi", scale=0.1, seed=2)
        assert not np.array_equal(g1.edges, g2.edges)

    def test_scale_changes_size(self):
        small = load_dataset("facebook", scale=0.1, seed=1)
        large = load_dataset("facebook", scale=0.3, seed=1)
        assert large.num_nodes > small.num_nodes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("ppi", scale=0.0)
