"""End-to-end integration tests across modules."""

import numpy as np
import pytest

from repro import (
    AdvSGM,
    AdvSGMConfig,
    AdversarialSkipGram,
    Graph,
    LinkPredictionTask,
    NodeClusteringTask,
    SkipGramModel,
    load_dataset,
)
from repro.embedding.skipgram import SkipGramConfig


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestEndToEndLinkPrediction:
    def test_full_pipeline_private(self):
        graph = load_dataset("facebook", scale=0.2, seed=3)
        task = LinkPredictionTask(graph, rng=3)
        config = AdvSGMConfig(
            embedding_dim=32,
            batch_size=8,
            num_epochs=20,
            discriminator_steps=10,
            generator_steps=2,
            epsilon=6.0,
        )
        model = AdvSGM(task.train_graph, config, rng=3).fit()
        result = task.evaluate(model.score_edges)
        assert 0.0 <= result.auc <= 1.0
        spent = model.privacy_spent()
        assert spent.epsilon <= config.epsilon + 1.5  # one trailing step of slack

    def test_private_vs_nonprivate_utility_gap(self):
        """The non-private AdvSGM must beat the epsilon=1 private AdvSGM."""
        graph = load_dataset("ppi", scale=0.3, seed=5)
        task = LinkPredictionTask(graph, rng=5)
        base = dict(
            embedding_dim=32,
            batch_size=16,
            num_epochs=25,
            discriminator_steps=10,
            generator_steps=3,
        )
        nodp = AdvSGM(
            task.train_graph, AdvSGMConfig(dp_enabled=False, **base), rng=5
        ).fit()
        dp = AdvSGM(
            task.train_graph, AdvSGMConfig(epsilon=1.0, **base), rng=5
        ).fit()
        auc_nodp = task.evaluate(nodp.score_edges).auc
        auc_dp = task.evaluate(dp.score_edges).auc
        assert auc_nodp > auc_dp
        assert auc_nodp > 0.6

    def test_skipgram_and_advsgm_share_evaluation_protocol(self):
        graph = load_dataset("wiki", scale=0.2, seed=7)
        task = LinkPredictionTask(graph, rng=7)
        sgm = SkipGramModel(
            task.train_graph,
            SkipGramConfig(embedding_dim=32, num_epochs=10, batches_per_epoch=10, batch_size=32),
            rng=7,
        ).fit()
        adv = AdversarialSkipGram(
            task.train_graph,
            AdvSGMConfig(
                embedding_dim=32, batch_size=32, num_epochs=10,
                discriminator_steps=10, generator_steps=2, dp_enabled=False,
            ),
            rng=7,
        ).fit()
        auc_sgm = task.evaluate(sgm.score_edges).auc
        auc_adv = task.evaluate(adv.score_edges).auc
        assert auc_sgm > 0.55
        assert auc_adv > 0.55


class TestEndToEndClustering:
    def test_clustering_pipeline(self):
        graph = load_dataset("ppi", scale=0.2, seed=9)
        config = AdvSGMConfig(
            embedding_dim=32, batch_size=16, num_epochs=10,
            discriminator_steps=5, generator_steps=2, dp_enabled=False,
        )
        model = AdvSGM(graph, config, rng=9).fit()
        task = NodeClusteringTask(graph, max_iterations=80)
        result = task.evaluate(model.embeddings)
        assert result.mutual_information >= 0.0
        assert result.num_clusters >= 1


class TestPrivacySemantics:
    def test_embeddings_differ_between_neighbouring_graphs(self):
        """Removing one node's edges changes the output (sanity, not a proof)."""
        base = load_dataset("facebook", scale=0.15, seed=11)
        edges = [tuple(e) for e in base.edges.tolist()]
        target = int(np.argmax(base.degrees))
        reduced_edges = [e for e in edges if target not in e]
        neighbour = Graph(base.num_nodes, reduced_edges, name="neighbour")
        cfg = AdvSGMConfig(
            embedding_dim=16, batch_size=8, num_epochs=3,
            discriminator_steps=3, generator_steps=1, epsilon=6.0,
        )
        emb_a = AdvSGM(base, cfg, rng=13).fit().embeddings
        emb_b = AdvSGM(neighbour, cfg, rng=13).fit().embeddings
        assert emb_a.shape == emb_b.shape
        assert not np.allclose(emb_a, emb_b)

    def test_budget_binds_training_length_monotonically(self):
        graph = load_dataset("blog", scale=0.15, seed=17)
        steps = []
        for eps in (1.0, 3.0, 6.0):
            cfg = AdvSGMConfig(
                embedding_dim=16, batch_size=8, num_epochs=40,
                discriminator_steps=10, generator_steps=1, epsilon=eps,
            )
            model = AdvSGM(graph, cfg, rng=19).fit()
            steps.append(model.accountant.steps)
        assert steps[0] < steps[1] < steps[2]
