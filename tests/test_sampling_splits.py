"""Tests for Algorithm-2 sampling and train/test edge splitting."""

import numpy as np
import pytest

from repro.graph.sampling import EdgeSampler
from repro.graph.splits import train_test_split_edges


class TestEdgeSampler:
    def test_batch_shapes(self, small_graph):
        sampler = EdgeSampler(small_graph, batch_size=16, num_negatives=5, rng=0)
        batch = sampler.sample()
        assert batch.positive_edges.shape == (16, 2)
        assert batch.negative_pairs.shape == (80, 2)
        assert batch.batch_size == 16
        assert batch.negatives_per_edge == 5

    def test_positive_edges_exist_in_graph(self, small_graph):
        sampler = EdgeSampler(small_graph, batch_size=32, num_negatives=2, rng=0)
        batch = sampler.sample()
        for u, v in batch.positive_edges:
            assert small_graph.has_edge(int(u), int(v))

    def test_negative_sources_match_positive_sources(self, small_graph):
        sampler = EdgeSampler(small_graph, batch_size=8, num_negatives=3, rng=0)
        batch = sampler.sample()
        expected = np.repeat(batch.positive_edges[:, 0], 3)
        assert np.array_equal(batch.negative_pairs[:, 0], expected)

    def test_sampling_probabilities(self, small_graph):
        sampler = EdgeSampler(small_graph, batch_size=16, num_negatives=5, rng=0)
        assert sampler.edge_sampling_probability == pytest.approx(
            16 / small_graph.num_edges
        )
        assert sampler.node_sampling_probability == pytest.approx(
            min(1.0, 80 / small_graph.num_nodes)
        )

    def test_probabilities_clamped_to_one(self, triangle_graph):
        sampler = EdgeSampler(triangle_graph, batch_size=100, num_negatives=5, rng=0)
        assert sampler.edge_sampling_probability == 1.0
        assert sampler.node_sampling_probability == 1.0

    def test_probabilities_follow_actual_take(self):
        # Regression: with batch_size > |E| the sampler clamps its draw, and
        # the probabilities reported to the RDP accountant must describe the
        # clamped take, not the configured batch size.
        from repro.graph.graph import Graph

        sparse = Graph(100, [(0, 1), (1, 2), (2, 3)])
        sampler = EdgeSampler(sparse, batch_size=10, num_negatives=2, rng=0)
        batch = sampler.sample()
        assert batch.batch_size == 3  # clamped to |E|
        assert sampler.positive_batch_size == 3
        assert batch.negative_pairs.shape == (6, 2)
        assert sampler.edge_sampling_probability == pytest.approx(1.0)
        # 3 * 2 / 100, not the configured 10 * 2 / 100 = 0.2 over-charge.
        assert sampler.node_sampling_probability == pytest.approx(0.06)

    def test_batch_capped_at_edge_count(self, triangle_graph):
        sampler = EdgeSampler(triangle_graph, batch_size=100, num_negatives=2, rng=0)
        batch = sampler.sample()
        assert batch.batch_size == triangle_graph.num_edges

    def test_invalid_parameters(self, small_graph):
        with pytest.raises(ValueError):
            EdgeSampler(small_graph, batch_size=0)
        with pytest.raises(ValueError):
            EdgeSampler(small_graph, batch_size=4, num_negatives=0)

    def test_sample_nodes(self, small_graph):
        sampler = EdgeSampler(small_graph, batch_size=4, rng=0)
        nodes = sampler.sample_nodes(10)
        assert nodes.shape == (10,)
        assert nodes.min() >= 0 and nodes.max() < small_graph.num_nodes
        with pytest.raises(ValueError):
            sampler.sample_nodes(0)

    def test_reproducible_with_seed(self, small_graph):
        b1 = EdgeSampler(small_graph, batch_size=8, rng=42).sample()
        b2 = EdgeSampler(small_graph, batch_size=8, rng=42).sample()
        assert np.array_equal(b1.positive_edges, b2.positive_edges)
        assert np.array_equal(b1.negative_pairs, b2.negative_pairs)


class TestEdgeSplit:
    def test_split_sizes(self, small_graph):
        split = train_test_split_edges(small_graph, test_fraction=0.1, rng=0)
        expected_test = int(round(small_graph.num_edges * 0.1))
        assert split.test_edges.shape[0] == expected_test
        assert split.train_edges.shape[0] == small_graph.num_edges - expected_test
        assert split.test_negatives.shape[0] == expected_test
        assert split.train_negatives.shape[0] == split.train_edges.shape[0]

    def test_train_graph_preserves_node_count(self, small_graph):
        split = train_test_split_edges(small_graph, rng=0)
        assert split.train_graph.num_nodes == small_graph.num_nodes
        assert split.train_graph.num_edges == split.train_edges.shape[0]

    def test_negatives_are_non_edges(self, small_graph):
        split = train_test_split_edges(small_graph, rng=0)
        for u, v in split.test_negatives:
            assert not small_graph.has_edge(int(u), int(v))
        for u, v in split.train_negatives:
            assert not small_graph.has_edge(int(u), int(v))

    def test_train_and_test_edges_disjoint(self, small_graph):
        split = train_test_split_edges(small_graph, rng=0)
        train = {tuple(e) for e in split.train_edges.tolist()}
        test = {tuple(e) for e in split.test_edges.tolist()}
        assert not train & test

    def test_invalid_fraction(self, small_graph):
        with pytest.raises(ValueError):
            train_test_split_edges(small_graph, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split_edges(small_graph, test_fraction=1.0)

    def test_reproducible(self, small_graph):
        s1 = train_test_split_edges(small_graph, rng=3)
        s2 = train_test_split_edges(small_graph, rng=3)
        assert np.array_equal(s1.test_edges, s2.test_edges)
        assert np.array_equal(s1.test_negatives, s2.test_negatives)
