"""Streaming pair pipeline, sharded walk corpus, and PairSource tests.

The key guarantees under test:

* ``iter_walk_pairs`` yields the *same pair multiset* as
  ``walks_to_pairs(walk_corpus(...))`` for the same seed, serial and sharded;
* ``walk_corpus(workers=N)`` is independent of the worker count and equals
  executing the same derived-seed passes serially;
* the default (materialised) trainer path is untouched — ``ArrayPairSource``
  replays the historical permutation/slice loop exactly;
* streaming training bounds the peak pair buffer by roughly one chunk;
* the rejection-sampling second-order fallback draws from the same
  distribution as the transition table.
"""

import numpy as np
import pytest

from repro.api.registry import make_model
from repro.graph.graph import Graph
from repro.graph.random_walk import iter_walk_pairs, walks_to_pairs
from repro.graph.walk_engine import WalkEngine, derive_pass_seeds
from repro.train import ArrayPairSource, SampledBatchSource, StreamingPairSource


def pair_multiset(pairs):
    """Order-independent canonical form of an (n, 2) pair array."""
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return sorted(map(tuple, arr))


def collect_stream(graph, *args, **kwargs):
    chunks = list(iter_walk_pairs(graph, *args, **kwargs))
    if not chunks:
        return np.zeros((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)


class TestIterWalkPairs:
    @pytest.mark.parametrize("chunk_walks", [1, 7, 50, 10_000])
    def test_multiset_matches_materialised_uniform(self, small_graph, chunk_walks):
        corpus = small_graph.walk_engine().walk_corpus(3, 12, rng=42)
        reference = walks_to_pairs(corpus, window_size=4)
        streamed = collect_stream(
            small_graph, 3, 12, window_size=4, chunk_walks=chunk_walks, rng=42
        )
        assert pair_multiset(streamed) == pair_multiset(reference)

    def test_multiset_matches_materialised_node2vec(self, small_graph):
        corpus = small_graph.walk_engine().walk_corpus(2, 10, p=0.5, q=2.0, rng=5)
        reference = walks_to_pairs(corpus, window_size=3)
        streamed = collect_stream(
            small_graph, 2, 10, window_size=3, p=0.5, q=2.0, chunk_walks=64, rng=5
        )
        assert pair_multiset(streamed) == pair_multiset(reference)

    def test_multiset_matches_sharded_corpus(self, small_graph):
        corpus = small_graph.walk_engine().walk_corpus(4, 8, rng=9, workers=2)
        reference = walks_to_pairs(corpus, window_size=2)
        streamed = collect_stream(
            small_graph, 4, 8, window_size=2, chunk_walks=77, rng=9, workers=2
        )
        assert pair_multiset(streamed) == pair_multiset(reference)

    def test_shuffle_within_chunk_preserves_multiset(self, small_graph):
        shuffled = collect_stream(small_graph, 2, 8, window_size=2, rng=3)
        plain = collect_stream(small_graph, 2, 8, window_size=2, rng=3, shuffle=False)
        assert pair_multiset(shuffled) == pair_multiset(plain)

    def test_shuffle_does_not_perturb_walk_stream(self, small_graph):
        # The shuffle generator is spawned off the walk rng without consuming
        # draws, so shuffle on/off must produce identical walk streams.
        corpus = small_graph.walk_engine().walk_corpus(2, 8, rng=3)
        reference = walks_to_pairs(corpus, window_size=2)
        streamed = collect_stream(small_graph, 2, 8, window_size=2, rng=3)
        assert pair_multiset(streamed) == pair_multiset(reference)

    def test_walk_length_one_yields_nothing(self, small_graph):
        assert list(iter_walk_pairs(small_graph, 2, 1, window_size=2, rng=0)) == []

    def test_rejects_bad_arguments(self, small_graph):
        with pytest.raises(ValueError):
            list(iter_walk_pairs(small_graph, 0, 5))
        with pytest.raises(ValueError):
            list(iter_walk_pairs(small_graph, 1, 5, window_size=0))
        with pytest.raises(ValueError):
            list(iter_walk_pairs(small_graph, 1, 5, chunk_walks=0))

    def test_pairs_are_int32_for_small_graphs(self, small_graph):
        chunk = next(iter_walk_pairs(small_graph, 1, 8, window_size=2, rng=0))
        assert chunk.dtype == np.int32


class TestShardedWalkCorpus:
    def test_worker_count_does_not_change_corpus(self, small_graph):
        engine = small_graph.walk_engine()
        two = engine.walk_corpus(4, 8, rng=9, workers=2)
        three = engine.walk_corpus(4, 8, rng=9, workers=3)
        assert np.array_equal(two, three)

    def test_sharded_equals_derived_seed_serial(self, small_graph):
        engine = small_graph.walk_engine()
        sharded = engine.walk_corpus(3, 10, rng=17, workers=2)
        seeds = derive_pass_seeds(np.random.default_rng(17), 3)
        serial = np.vstack(
            [engine.corpus_pass(int(seed), 10) for seed in seeds]
        )
        assert np.array_equal(sharded, serial)

    def test_sharded_node2vec_equals_derived_seed_serial(self, small_graph):
        engine = small_graph.walk_engine()
        sharded = engine.walk_corpus(2, 8, p=0.25, q=4.0, rng=23, workers=2)
        seeds = derive_pass_seeds(np.random.default_rng(23), 2)
        serial = np.vstack(
            [engine.corpus_pass(int(seed), 8, p=0.25, q=4.0) for seed in seeds]
        )
        assert np.array_equal(sharded, serial)

    def test_serial_path_unchanged_by_workers_argument(self, small_graph):
        # workers=1 must keep the historical shared-stream corpus bit-for-bit.
        engine = small_graph.walk_engine()
        legacy = engine.walk_corpus(3, 6, rng=0)
        explicit = engine.walk_corpus(3, 6, rng=0, workers=1)
        assert np.array_equal(legacy, explicit)


class TestRejectionSampling:
    def test_walks_stay_on_edges(self, small_graph):
        engine = WalkEngine(small_graph)
        engine.second_order_entry_limit = 0  # force rejection in "auto"
        walks = engine.node2vec_walks(np.arange(small_graph.num_nodes), 10, p=0.5, q=2.0, rng=3)
        assert not engine._tables  # no table was built
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if b < 0:
                    break
                assert small_graph.has_edge(int(a), int(b))

    def test_explicit_mode_validation(self, small_graph):
        engine = small_graph.walk_engine()
        with pytest.raises(ValueError):
            engine.node2vec_walks(np.arange(4), 5, p=0.5, q=2.0, second_order="bogus")

    def test_rejection_matches_table_distribution(self):
        # Tiny fixed graph: walk arrived at node 1 coming from node 0.
        # Neighbours of 1 are {0, 2, 3}; (2, 0) is an edge (triangle) while
        # (3, 0) is not, so the unnormalised weights are 1/p, 1, 1/q.
        graph = Graph(4, [(0, 1), (1, 2), (0, 2), (1, 3)])
        engine = WalkEngine(graph)
        p, q = 0.5, 2.0
        draws = 40_000
        prev = np.zeros(draws, dtype=np.int64)
        current = np.ones(draws, dtype=np.int64)
        sampled = engine._rejection_step(prev, current, p, q, np.random.default_rng(0))
        weights = {0: 1.0 / p, 2: 1.0, 3: 1.0 / q}
        total = sum(weights.values())
        for node, weight in weights.items():
            frequency = float(np.mean(sampled == node))
            assert frequency == pytest.approx(weight / total, abs=0.02)

    def test_second_order_entry_count(self, triangle_graph):
        engine = triangle_graph.walk_engine()
        degrees = np.asarray(triangle_graph.degrees)
        assert engine.second_order_entry_count() == int((degrees**2).sum())


class TestPairSources:
    def test_array_source_replays_historical_loop(self, rng):
        pairs = rng.integers(0, 50, size=(103, 2))
        source = ArrayPairSource(pairs, batch_size=16)
        batches = list(source.batches(np.random.default_rng(11)))
        order = np.random.default_rng(11).permutation(pairs.shape[0])
        expected = [pairs[order[i : i + 16]] for i in range(0, pairs.shape[0], 16)]
        assert len(batches) == len(expected)
        for got, want in zip(batches, expected):
            assert np.array_equal(got, want)
        assert source.num_pairs == 103
        assert source.peak_buffer_pairs == 103

    def test_streaming_source_carves_batches(self):
        chunks = [np.arange(n * 2).reshape(n, 2) + offset
                  for n, offset in ((10, 0), (3, 100), (12, 200))]
        source = StreamingPairSource(lambda: iter(chunks), batch_size=8)
        batches = list(source.batches())
        assert [b.shape[0] for b in batches] == [8, 8, 8, 1]
        reassembled = np.concatenate(batches, axis=0)
        assert pair_multiset(reassembled) == pair_multiset(np.concatenate(chunks))
        assert source.pairs_delivered == 25
        # Peak buffer is bounded by one chunk plus the batch remainder.
        assert source.peak_buffer_pairs <= max(c.shape[0] for c in chunks) + 8

    def test_streaming_source_fresh_pass_per_call(self):
        calls = []

        def factory():
            calls.append(None)
            return iter([np.zeros((4, 2), dtype=np.int64)])

        source = StreamingPairSource(factory, batch_size=4)
        list(source.batches())
        list(source.batches())
        assert len(calls) == 2

    def test_sampled_batch_source_pulls_in_order(self):
        counter = iter(range(100))
        source = SampledBatchSource(lambda: next(counter))
        batches = source.batches()
        assert [next(batches) for _ in range(3)] == [0, 1, 2]


class TestStreamingTraining:
    def test_streaming_deepwalk_bounds_pair_buffer(self, small_graph):
        model = make_model(
            "deepwalk", graph=small_graph, rng=7, num_walks=2, walk_length=10,
            window_size=3, embedding_dim=8, num_epochs=2, batch_size=64,
            pair_streaming=True, stream_chunk_walks=30,
        ).fit()
        assert np.isfinite(model.embeddings_).all()
        source = model.pair_source_
        assert source.pairs_delivered > 0
        # 30 walks of length 10 with window 3 emit < 30 * 10 * 6 pairs; the
        # buffer may additionally hold one partial batch.
        assert source.peak_buffer_pairs <= 30 * 10 * 6 + 64

    def test_streaming_node2vec_trains(self, small_graph):
        model = make_model(
            "node2vec", graph=small_graph, rng=7, num_walks=1, walk_length=8,
            window_size=2, embedding_dim=8, num_epochs=1, batch_size=64,
            p=0.5, q=2.0, pair_streaming=True, stream_chunk_walks=50,
        ).fit()
        assert np.isfinite(model.embeddings_).all()

    def test_streaming_is_deterministic_per_seed(self, small_graph):
        def train():
            return make_model(
                "deepwalk", graph=small_graph, rng=13, num_walks=1, walk_length=8,
                window_size=2, embedding_dim=8, num_epochs=2, batch_size=32,
                pair_streaming=True, stream_chunk_walks=40,
            ).fit().embeddings_

        assert np.array_equal(train(), train())

    def test_default_mode_unaffected_by_streaming_knobs(self, small_graph):
        # The chunk size only matters when streaming is enabled.
        base = make_model(
            "deepwalk", graph=small_graph, rng=5, num_walks=1, walk_length=8,
            window_size=2, embedding_dim=8, num_epochs=1, batch_size=32,
        ).fit().embeddings_
        other = make_model(
            "deepwalk", graph=small_graph, rng=5, num_walks=1, walk_length=8,
            window_size=2, embedding_dim=8, num_epochs=1, batch_size=32,
            stream_chunk_walks=17,
        ).fit().embeddings_
        assert np.array_equal(base, other)
