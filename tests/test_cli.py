"""Smoke tests for the ``python -m repro`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def run_cli(*args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestCli:
    def test_datasets_list(self):
        proc = run_cli("datasets", "list")
        assert proc.returncode == 0, proc.stderr
        for name in ("ppi", "facebook", "wiki", "blog", "epinions", "dblp"):
            assert name in proc.stdout

    def test_models_list(self):
        proc = run_cli("models", "list")
        assert proc.returncode == 0, proc.stderr
        for name in ("advsgm", "dpsgm", "gap", "dpar", "deepwalk"):
            assert name in proc.stdout

    def test_train_two_epochs(self, tmp_path):
        out = tmp_path / "emb.npz"
        proc = run_cli(
            "train", "--model", "advsgm", "--dataset", "ppi",
            "--epsilon", "6", "--scale", "0.1", "--seed", "0",
            "--set", "num_epochs=2", "--set", "discriminator_steps=2",
            "--set", "batch_size=4", "--set", "embedding_dim=8",
            "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert "privacy spent" in proc.stdout
        embeddings = np.load(out)["embeddings"]
        assert embeddings.shape == (100, 8)

    def test_train_rejects_epsilon_for_nonprivate(self):
        proc = run_cli("train", "--model", "deepwalk", "--dataset", "ppi",
                       "--epsilon", "1")
        assert proc.returncode != 0
        assert "not private" in proc.stderr

    def test_unknown_config_field(self):
        proc = run_cli("train", "--model", "advsgm", "--dataset", "ppi",
                       "--set", "bogus=1")
        assert proc.returncode != 0
        assert "unknown config field" in proc.stderr

    def test_unknown_model_is_one_line_error(self):
        proc = run_cli("train", "--model", "nosuchmodel", "--dataset", "ppi")
        assert proc.returncode != 0
        assert "unknown model" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_dataset_is_one_line_error(self):
        proc = run_cli("train", "--model", "deepwalk", "--dataset", "nosuchdata")
        assert proc.returncode != 0
        assert "unknown dataset" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_dataset_in_evaluate(self):
        proc = run_cli("evaluate", "--model", "deepwalk", "--dataset", "nosuchdata")
        assert proc.returncode != 0
        assert "unknown dataset" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_malformed_override_value(self):
        proc = run_cli("train", "--model", "deepwalk", "--dataset", "ppi",
                       "--set", "num_epochs=banana")
        assert proc.returncode != 0
        assert "cannot parse" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_invalid_override_value_fails_config_validation(self):
        proc = run_cli("train", "--model", "deepwalk", "--dataset", "ppi",
                       "--set", "num_epochs=-3")
        assert proc.returncode != 0
        assert "invalid configuration" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_equals_in_override(self):
        proc = run_cli("train", "--model", "deepwalk", "--dataset", "ppi",
                       "--set", "num_epochs")
        assert proc.returncode != 0
        assert "field=value" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_stream_flags_rejected_for_non_walk_models(self):
        proc = run_cli("train", "--model", "sgm", "--dataset", "ppi",
                       "--stream-pairs")
        assert proc.returncode != 0
        assert "not supported" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_train_streaming_deepwalk(self, tmp_path):
        out = tmp_path / "emb.npz"
        proc = run_cli(
            "train", "--model", "deepwalk", "--dataset", "ppi",
            "--scale", "0.1", "--seed", "0", "--stream-pairs",
            "--chunk-walks", "64",
            "--set", "num_epochs=1", "--set", "num_walks=1",
            "--set", "walk_length=8", "--set", "embedding_dim=8",
            "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        embeddings = np.load(out)["embeddings"]
        assert embeddings.shape == (100, 8)

    def test_experiment_fig3_smoke_parallel(self):
        proc = run_cli(
            "experiment", "fig3", "--preset", "smoke", "--dataset", "ppi",
            "--models", "AdvSGM", "--epsilons", "1", "--workers", "2",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Fig. 3" in proc.stdout
        assert "AdvSGM" in proc.stdout


class TestServiceCli:
    """Error handling of the service subcommands: one-line errors, no tracebacks."""

    def write_spec(self, tmp_path):
        from repro.api import ExperimentSpec, ModelSpec

        spec = ExperimentSpec(
            task="link_prediction",
            datasets=("ppi",),
            models=(ModelSpec("deepwalk"),),
            epsilons=(None,),
            repeats=1,
            base_seed=11,
            dataset_scale=0.1,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    def assert_one_line_error(self, proc, fragment):
        assert proc.returncode != 0
        assert fragment in proc.stderr
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_submit_unknown_spec_file(self, tmp_path):
        proc = run_cli("submit", str(tmp_path / "nosuch.json"),
                       "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "cannot read spec file")

    def test_submit_malformed_json_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = run_cli("submit", str(bad), "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "is not valid JSON")

    def test_submit_valid_json_invalid_spec(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"task": "link_prediction"}))
        proc = run_cli("submit", str(bogus), "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "invalid experiment spec")

    def test_submit_unreachable_server(self, tmp_path):
        # Port 1 on loopback refuses instantly -- no server, no timeout.
        proc = run_cli("submit", str(self.write_spec(tmp_path)),
                       "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "cannot reach server")

    def test_status_unreachable_server(self):
        proc = run_cli("status", "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "cannot reach server")

    def test_worker_unreachable_server_fails_fast(self):
        proc = run_cli("worker", "--server", "http://127.0.0.1:1")
        self.assert_one_line_error(proc, "cannot reach server")

    def test_serve_unbindable_host(self, tmp_path):
        proc = run_cli("serve", "--host", "256.0.0.1", "--port", "0",
                       "--cache-dir", str(tmp_path))
        assert proc.returncode != 0
        assert "cannot" in proc.stderr
        assert "Traceback" not in proc.stderr
