"""External-sort ingest tests: parity with ``Graph.__init__``, determinism.

The contract under test (see ``repro/graph/ingest.py``):

* ``build_disk_graph`` produces byte-identical ``.npy`` files to
  ``Graph(...).save(...)`` for every chunk size — including sizes small
  enough to force multi-round run merges — so the external sort is an
  out-of-core re-implementation of the in-RAM canonicalisation, not an
  approximation of it;
* duplicate and flipped duplicate edges collapse exactly as in
  ``Graph.__init__``; validation errors carry the same messages;
* node-count inference (explicit > file header hint > max id + 1) and
  self-loop policy behave as documented;
* repeated builds are bit-for-bit deterministic.
"""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.ingest import build_disk_graph
from repro.graph.io import write_edge_list
from repro.graph.storage import ARRAY_FILES, read_meta


def reference_files(graph: Graph, tmp_path, name="ref"):
    """The on-disk bytes ``Graph.save`` writes for ``graph``."""
    ref_dir = tmp_path / name
    graph.save(ref_dir)
    return {
        role: (ref_dir / filename).read_bytes()
        for role, filename in ARRAY_FILES.items()
        if (ref_dir / filename).is_file()
    }


def built_files(out_dir):
    return {
        role: (out_dir / filename).read_bytes()
        for role, filename in ARRAY_FILES.items()
        if (out_dir / filename).is_file()
    }


@pytest.fixture(scope="module")
def messy_edges():
    """A shuffled, duplicated, direction-flipped edge array."""
    rng = np.random.default_rng(42)
    base = rng.integers(0, 200, size=(3000, 2), dtype=np.int64)
    base = base[base[:, 0] != base[:, 1]]
    flipped = base[:, ::-1]
    dupes = np.concatenate([base, flipped, base[:500]])
    return dupes[rng.permutation(len(dupes))]


class TestParity:
    @pytest.mark.parametrize("chunk_edges", [97, 1000, 1_000_000])
    def test_bytes_identical_to_graph_save(self, messy_edges, tmp_path, chunk_edges):
        # chunk_edges=97 forces many runs and multiple merge rounds.
        graph = Graph(200, messy_edges, name="messy")
        expected = reference_files(graph, tmp_path)
        out = tmp_path / f"ingest-{chunk_edges}"
        build_disk_graph(
            messy_edges, out, num_nodes=200, name="messy", chunk_edges=chunk_edges
        )
        assert built_files(out) == expected

    def test_labels_round_trip(self, tmp_path):
        edges = [(0, 1), (1, 2), (2, 3)]
        labels = [0, 1, 1, 0]
        graph = Graph(4, edges, labels=labels, name="lab")
        expected = reference_files(graph, tmp_path)
        out = tmp_path / "ingest-lab"
        build_disk_graph(
            np.asarray(edges), out, num_nodes=4, labels=labels, name="lab"
        )
        assert built_files(out) == expected

    def test_graph_source(self, messy_edges, tmp_path):
        graph = Graph(200, messy_edges, name="messy")
        expected = reference_files(graph, tmp_path)
        out = tmp_path / "from-graph"
        build_disk_graph(graph, out, name="messy", chunk_edges=97)
        assert built_files(out) == expected

    def test_text_file_source_with_header_hint(self, messy_edges, tmp_path):
        graph = Graph(200, messy_edges, name="messy")
        listing = tmp_path / "edges.txt"
        write_edge_list(graph, listing)  # writes the `# nodes=200` header
        expected = reference_files(graph, tmp_path)
        out = tmp_path / "from-text"
        build_disk_graph(listing, out, name="messy", chunk_edges=97)
        assert built_files(out) == expected
        assert read_meta(out)["num_nodes"] == 200


class TestDeterminism:
    def test_repeat_builds_identical(self, messy_edges, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for out in (a, b):
            build_disk_graph(messy_edges, out, num_nodes=200, chunk_edges=101)
        assert built_files(a) == built_files(b)

    def test_input_order_is_irrelevant(self, messy_edges, tmp_path):
        shuffled = messy_edges[np.random.default_rng(7).permutation(len(messy_edges))]
        a, b = tmp_path / "a", tmp_path / "b"
        build_disk_graph(messy_edges, a, num_nodes=200, chunk_edges=97)
        build_disk_graph(shuffled, b, num_nodes=200, chunk_edges=97)
        assert built_files(a) == built_files(b)


class TestValidationAndInference:
    def test_num_nodes_inferred_from_max_id(self, tmp_path):
        out = tmp_path / "g"
        build_disk_graph(np.array([[0, 5], [1, 2]]), out)
        assert read_meta(out)["num_nodes"] == 6

    def test_self_loop_rejected_by_default(self, tmp_path):
        with pytest.raises(ValueError, match="self-loop"):
            build_disk_graph(np.array([[0, 0], [0, 1]]), tmp_path / "g", num_nodes=2)

    def test_self_loops_dropped_on_request(self, tmp_path):
        out = tmp_path / "g"
        build_disk_graph(
            np.array([[0, 0], [0, 1], [1, 1]]), out, num_nodes=2, self_loops="drop"
        )
        assert read_meta(out)["num_edges"] == 1

    def test_out_of_range_edge_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="outside"):
            build_disk_graph(np.array([[0, 9]]), tmp_path / "g", num_nodes=3)

    def test_existing_output_needs_overwrite(self, tmp_path):
        out = tmp_path / "g"
        edges = np.array([[0, 1]])
        build_disk_graph(edges, out, num_nodes=2)
        with pytest.raises(FileExistsError):
            build_disk_graph(edges, out, num_nodes=2)
        build_disk_graph(edges, out, num_nodes=2, overwrite=True)

    def test_result_opens_as_graph(self, messy_edges, tmp_path):
        out = tmp_path / "g"
        build_disk_graph(messy_edges, out, num_nodes=200, chunk_edges=97)
        opened = Graph.open(out)
        reference = Graph(200, messy_edges)
        assert np.array_equal(opened.edges, reference.edges)
        assert opened.fingerprint == reference.fingerprint
