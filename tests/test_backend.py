"""The compute-backend seam: resolution, numpy reference ops, cache identity,
and (when torch is installed) numpy-vs-torch parity across the models.

Torch is intentionally optional: on a torch-less machine every test in the
``TestTorch*`` classes skips, and the rest of this module doubles as the
proof of the import gate — ``import repro`` and full numpy training never
touch torch.
"""

import json

import numpy as np
import pytest

import repro
from repro.api.spec import ExperimentCell, ModelSpec
from repro.backend import (
    BACKEND_ENV_VAR,
    NUMPY_BACKEND,
    BackendError,
    backend_available,
    canonical_backend_spec,
    get_backend,
    list_backends,
)
from repro.cache import ResultStore, cell_backend_spec, cell_key
from repro.golden import GOLDEN_CASES, golden_graph

TORCH_AVAILABLE = backend_available("torch")


def _cell(**changes):
    base = dict(
        task="link_prediction",
        dataset="ppi",
        model=ModelSpec(name="sgm"),
        epsilon=None,
        repeat=0,
        seed=7,
    )
    base.update(changes)
    return ExperimentCell(**base)


# ---------------------------------------------------------------------------
# resolution and availability
# ---------------------------------------------------------------------------
class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        be = get_backend()
        assert be.name == "numpy"
        assert be.spec == "numpy"
        assert be is NUMPY_BACKEND

    def test_registered_backends(self):
        assert "numpy" in list_backends()
        assert "torch" in list_backends()

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend()

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        assert get_backend("numpy").name == "numpy"

    def test_unknown_backend_is_one_line_error(self):
        with pytest.raises(BackendError, match="unknown backend 'tensorflow'"):
            get_backend("tensorflow")

    def test_numpy_rejects_non_cpu_device(self):
        with pytest.raises(BackendError, match="does not support device"):
            get_backend("numpy", device="cuda")

    def test_conflicting_devices_rejected(self):
        with pytest.raises(BackendError, match="conflicting devices"):
            get_backend("torch:cpu", device="cuda")

    def test_instance_passthrough(self):
        assert get_backend(NUMPY_BACKEND) is NUMPY_BACKEND
        with pytest.raises(BackendError, match="device"):
            get_backend(NUMPY_BACKEND, device="cuda")

    @pytest.mark.skipif(TORCH_AVAILABLE, reason="torch installed here")
    def test_torch_unavailable_is_one_line_error(self):
        with pytest.raises(BackendError, match="torch is not installed"):
            get_backend("torch")

    def test_canonical_spec_is_total_without_torch(self, monkeypatch):
        # Pure string work: resolves specs for backends that may not be
        # importable in this process (cache keys must never raise).
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert canonical_backend_spec() == "numpy"
        assert canonical_backend_spec("numpy") == "numpy"
        assert canonical_backend_spec("torch") == "torch:cpu"
        assert canonical_backend_spec("torch", "cuda") == "torch:cuda"
        assert canonical_backend_spec("torch:cuda:1") == "torch:cuda:1"
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        assert canonical_backend_spec() == "torch:cpu"


# ---------------------------------------------------------------------------
# precision modes: spec grammar, resolution, canonicalisation (torch-free)
# ---------------------------------------------------------------------------
class TestPrecisionResolution:
    def test_precision_token_parses_off_the_spec_end(self, monkeypatch):
        # Devices may contain colons ("cuda:0"), so the precision token is
        # peeled off the END of the spec, never the middle.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert canonical_backend_spec("torch:fast") == "torch:cpu:fast"
        assert canonical_backend_spec("torch:cuda:fast") == "torch:cuda:fast"
        assert canonical_backend_spec("torch:cuda:0:fast") == "torch:cuda:0:fast"
        assert canonical_backend_spec("torch", precision="fast") == "torch:cpu:fast"
        assert canonical_backend_spec("torch", "cuda", "fast") == "torch:cuda:fast"

    def test_exact_is_canonicalised_away(self, monkeypatch):
        # Pre-precision cache keys must survive: an explicit "exact" resolves
        # to the very same canonical strings the seam produced before.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert canonical_backend_spec("numpy", precision="exact") == "numpy"
        assert canonical_backend_spec("torch:cpu:exact") == "torch:cpu"
        assert canonical_backend_spec("torch", precision="exact") == "torch:cpu"
        assert canonical_backend_spec("torch:cuda:1:exact") == "torch:cuda:1"

    def test_env_var_can_name_a_fast_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch:cuda:fast")
        assert canonical_backend_spec() == "torch:cuda:fast"

    def test_conflicting_precisions_rejected(self):
        with pytest.raises(BackendError, match="conflicting precisions"):
            get_backend("torch:cpu:fast", precision="exact")

    def test_agreeing_precisions_accepted(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert canonical_backend_spec("torch:fast", precision="fast") == "torch:cpu:fast"

    def test_unknown_precision_rejected(self):
        with pytest.raises(BackendError, match="unknown precision"):
            get_backend("numpy", precision="double")

    def test_numpy_rejects_fast(self):
        # numpy IS the exact reference; it has no float32 mode to offer.
        with pytest.raises(BackendError, match="does not support precision"):
            get_backend("numpy", precision="fast")

    def test_numpy_exact_is_the_shared_instance(self):
        assert get_backend("numpy", precision="exact") is NUMPY_BACKEND
        assert NUMPY_BACKEND.precision == "exact"
        assert NUMPY_BACKEND.spec == "numpy"

    def test_instance_passthrough_checks_precision(self):
        assert get_backend(NUMPY_BACKEND, precision="exact") is NUMPY_BACKEND
        with pytest.raises(BackendError, match="precision"):
            get_backend(NUMPY_BACKEND, precision="fast")


# ---------------------------------------------------------------------------
# the numpy backend is the reference implementation
# ---------------------------------------------------------------------------
class TestNumpyBackendOps:
    def test_asarray_is_identity_for_float64(self):
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert NUMPY_BACKEND.asarray(x) is x
        assert NUMPY_BACKEND.to_numpy(x) is x

    def test_gather_and_index_add(self):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(10, 4))
        idx = np.array([3, 3, 7])
        assert np.array_equal(NUMPY_BACKEND.gather(table, idx), table[idx])
        target = np.zeros((10, 4))
        rows = rng.normal(size=(3, 4))
        expected = target.copy()
        np.add.at(expected, idx, rows)
        NUMPY_BACKEND.index_add_(target, idx, rows)
        assert np.array_equal(target, expected)

    def test_dots_match_einsum(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(5, 3))
        bundle = rng.normal(size=(5, 4, 3))
        coeff = rng.normal(size=(5, 4))
        assert np.array_equal(
            NUMPY_BACKEND.rowwise_dot(a, b), np.einsum("ij,ij->i", a, b)
        )
        assert np.array_equal(
            NUMPY_BACKEND.batched_rowwise_dot(a, bundle),
            np.einsum("ij,ikj->ik", a, bundle),
        )
        assert np.array_equal(
            NUMPY_BACKEND.weighted_rows_sum(coeff, bundle),
            np.einsum("ik,ikj->ij", coeff, bundle),
        )

    def test_activations_match_functional(self):
        from repro.nn import functional as F

        x = np.linspace(-600, 600, 41)
        assert np.array_equal(NUMPY_BACKEND.sigmoid(x), F.sigmoid(x))
        assert np.array_equal(NUMPY_BACKEND.log_sigmoid(x), F.log_sigmoid(x))
        assert np.array_equal(NUMPY_BACKEND.relu(x), F.relu(x))
        assert np.array_equal(NUMPY_BACKEND.tanh(x), F.tanh(x))
        m = x.reshape(-1, 1) + np.arange(3)
        assert np.array_equal(NUMPY_BACKEND.softmax(m, axis=1), F.softmax(m, axis=1))

    def test_row_ops_match_privacy_clipping(self):
        from repro.privacy.clipping import clip_by_l2_norm, clip_rows_by_l2_norm

        rng = np.random.default_rng(2)
        g = rng.normal(scale=3.0, size=(6, 4))
        assert np.array_equal(NUMPY_BACKEND.clip_rows(g, 1.0), clip_rows_by_l2_norm(g, 1.0))
        assert np.array_equal(NUMPY_BACKEND.clip_global(g, 1.0), clip_by_l2_norm(g, 1.0))
        x = rng.normal(size=(6, 4))
        expected = x.copy()
        norms = np.linalg.norm(expected, axis=1, keepdims=True)
        np.divide(expected, np.maximum(norms, 1.0), out=expected)
        NUMPY_BACKEND.normalize_rows_(x, 1.0)
        assert np.array_equal(x, expected)

    def test_gaussian_is_the_raw_generator_stream(self):
        draws = NUMPY_BACKEND.gaussian(np.random.default_rng(42), 0.0, 2.0, (3, 2))
        assert np.array_equal(
            draws, np.random.default_rng(42).normal(0.0, 2.0, size=(3, 2))
        )


# ---------------------------------------------------------------------------
# protocol conformance: every (backend, precision) vs the numpy reference
# ---------------------------------------------------------------------------
def _precisioned_backends():
    """Every (family, precision) combination available in this process."""
    combos = [("numpy", "exact")]
    if TORCH_AVAILABLE:
        combos += [("torch", "exact"), ("torch", "fast")]
    return combos


#: Agreement tolerance with the float64 numpy reference, per precision mode.
CONFORMANCE_RTOL = {"exact": 1e-12, "fast": 3e-5}
CONFORMANCE_ATOL = {"exact": 1e-12, "fast": 1e-5}


@pytest.mark.parametrize("family,precision", _precisioned_backends())
class TestBackendProtocolConformance:
    """The full array-ops protocol agrees with the numpy reference.

    ``exact`` backends must match at float64 round-off; ``fast`` backends
    (float32 device arithmetic) within single-precision tolerance.  The
    sweep runs for whatever is installed — numpy-only machines still pin the
    reference against itself, and the CI torch job covers all three combos.
    """

    def _backend(self, family, precision):
        device = None if family == "numpy" else "cpu"
        return get_backend(family, device=device, precision=precision)

    def test_core_ops_match_reference(self, family, precision):
        be = self._backend(family, precision)
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 4))
        bundle = rng.normal(size=(6, 5, 4))
        coeff = rng.normal(size=(6, 5))
        checks = [
            (be.rowwise_dot(be.asarray(a), be.asarray(b)),
             NUMPY_BACKEND.rowwise_dot(a, b)),
            (be.batched_rowwise_dot(be.asarray(a), be.asarray(bundle)),
             NUMPY_BACKEND.batched_rowwise_dot(a, bundle)),
            (be.weighted_rows_sum(be.asarray(coeff), be.asarray(bundle)),
             NUMPY_BACKEND.weighted_rows_sum(coeff, bundle)),
            (be.sigmoid(be.asarray(a)), NUMPY_BACKEND.sigmoid(a)),
            (be.log_sigmoid(be.asarray(a)), NUMPY_BACKEND.log_sigmoid(a)),
            (be.softmax(be.asarray(a), axis=1), NUMPY_BACKEND.softmax(a, axis=1)),
            (be.clip(be.asarray(a), -0.5, 0.5), NUMPY_BACKEND.clip(a, -0.5, 0.5)),
            (be.clip_rows(be.asarray(a * 3), 1.0), NUMPY_BACKEND.clip_rows(a * 3, 1.0)),
            (be.clip_global(be.asarray(a * 3), 1.0),
             NUMPY_BACKEND.clip_global(a * 3, 1.0)),
            (be.sum(be.asarray(a), axis=0), NUMPY_BACKEND.sum(a, axis=0)),
            (be.mean(be.asarray(a)), NUMPY_BACKEND.mean(a)),
        ]
        rtol = CONFORMANCE_RTOL[precision]
        atol = CONFORMANCE_ATOL[precision]
        for got, want in checks:
            assert np.allclose(
                be.to_numpy(got), np.asarray(want), rtol=rtol, atol=atol
            )

    def test_clip_without_bounds_is_a_no_op(self, family, precision):
        # clip(x, None, None) must not call into the element-wise kernel
        # (np.clip raises on two None bounds); the template method returns
        # the values unchanged.
        be = self._backend(family, precision)
        x = np.linspace(-3.0, 3.0, 12).reshape(3, 4)
        out = be.clip(be.asarray(x), None, None)
        assert np.allclose(
            be.to_numpy(out), x,
            rtol=CONFORMANCE_RTOL[precision], atol=CONFORMANCE_ATOL[precision],
        )

    def test_scalar_returns_a_python_float(self, family, precision):
        be = self._backend(family, precision)
        total = be.scalar(be.sum(be.asarray(np.full((3, 3), 0.5))))
        assert isinstance(total, float)
        assert total == pytest.approx(4.5, rel=CONFORMANCE_RTOL[precision])

    def test_sample_negatives_deterministic_and_in_range(self, family, precision):
        be = self._backend(family, precision)
        first = be.to_numpy(be.sample_negatives(np.random.default_rng(5), (7, 3), 20))
        second = be.to_numpy(be.sample_negatives(np.random.default_rng(5), (7, 3), 20))
        assert np.array_equal(first, second)  # seeded => reproducible
        assert first.shape == (7, 3)
        assert first.min() >= 0 and first.max() < 20
        if precision == "exact":
            # Exact backends consume the raw numpy stream verbatim.
            assert np.array_equal(
                first, np.random.default_rng(5).integers(0, 20, size=(7, 3))
            )

    def test_skipgram_step_matches_reference(self, family, precision):
        """The fused op equals reference loss + weight updates per precision."""
        be = self._backend(family, precision)
        rng = np.random.default_rng(17)
        w_in0 = rng.normal(scale=0.3, size=(30, 8))
        w_out0 = rng.normal(scale=0.3, size=(30, 8))
        positive = rng.integers(0, 30, size=(12, 2))
        negatives = rng.integers(0, 30, size=(12, 4))
        lr = 0.05
        ref_in, ref_out = w_in0.copy(), w_out0.copy()
        ref_loss = NUMPY_BACKEND.skipgram_step(ref_in, ref_out, positive, negatives, lr)
        w_in = be.parameter(w_in0)
        w_out = be.parameter(w_out0)
        loss = be.skipgram_step(w_in, w_out, positive, negatives, lr)
        rtol = CONFORMANCE_RTOL[precision]
        atol = CONFORMANCE_ATOL[precision]
        assert be.scalar(loss) == pytest.approx(NUMPY_BACKEND.scalar(ref_loss), rel=max(rtol, 1e-12))
        assert np.allclose(be.to_numpy(w_in), ref_in, rtol=rtol, atol=atol)
        assert np.allclose(be.to_numpy(w_out), ref_out, rtol=rtol, atol=atol)

    def test_skipgram_step_on_numpy_matches_unfused_model_math(self, family, precision):
        """One reference step == one unfused loss+gradient+update sequence."""
        if family != "numpy":
            pytest.skip("pins the numpy reference only")
        from repro.graph.sampling import SampleBatch

        rng = np.random.default_rng(23)
        w_in0 = rng.normal(scale=0.3, size=(20, 6))
        w_out0 = rng.normal(scale=0.3, size=(20, 6))
        positive = rng.integers(0, 20, size=(9, 2))
        negatives = rng.integers(0, 20, size=(9, 3))
        lr = 0.1
        fused_in, fused_out = w_in0.copy(), w_out0.copy()
        fused_loss = NUMPY_BACKEND.skipgram_step(
            fused_in, fused_out, positive, negatives, lr
        )
        # The unfused path as the SkipGramModel runs it (sans normalisation).
        model = repro.make_model("sgm", embedding_dim=6, normalize_embeddings=False)
        model.graph = None
        model.backend_ = NUMPY_BACKEND
        model.w_in, model.w_out = w_in0.copy(), w_out0.copy()
        model.config.learning_rate = lr
        sources = np.repeat(positive[:, 0], negatives.shape[1])
        batch = SampleBatch(
            positive_edges=positive,
            negative_pairs=np.stack([sources, negatives.reshape(-1)], axis=1),
        )
        loss = model.batch_loss(batch)
        grad_in, touched_in, grad_out, touched_out = model._accumulate_gradients(batch)
        NUMPY_BACKEND.index_add_(model.w_in, touched_in, lr * grad_in)
        NUMPY_BACKEND.index_add_(model.w_out, touched_out, lr * grad_out)
        assert float(fused_loss) == pytest.approx(float(loss), rel=1e-12)
        assert np.allclose(fused_in, model.w_in, rtol=1e-12, atol=1e-12)
        assert np.allclose(fused_out, model.w_out, rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------------
# backend identity in the experiment cache
# ---------------------------------------------------------------------------
class TestCacheBackendIdentity:
    def test_cell_backend_spec_precedence(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert cell_backend_spec(_cell()) == "numpy"
        assert cell_backend_spec(_cell(backend="torch")) == "torch:cpu"
        assert cell_backend_spec(_cell(backend="torch", device="cuda")) == "torch:cuda"
        # A model-level override counts when the cell is silent...
        via_model = _cell(model=ModelSpec(name="sgm", overrides={"backend": "torch"}))
        assert cell_backend_spec(via_model) == "torch:cpu"
        # ...but the cell-level field wins (mirrors _compute_cell).
        both = _cell(
            model=ModelSpec(name="sgm", overrides={"backend": "torch"}),
            backend="numpy",
        )
        assert cell_backend_spec(both) == "numpy"

    def test_numpy_and_torch_cells_never_share_a_key(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        keys = {
            cell_key(_cell()),
            cell_key(_cell(backend="numpy")),  # same work: unset == numpy
            cell_key(_cell(backend="torch")),
            cell_key(_cell(backend="torch", device="cuda")),
        }
        assert cell_key(_cell()) == cell_key(_cell(backend="numpy"))
        assert len(keys) == 3
        # Naming the backend through the model overrides is the same work
        # unit as naming it on the cell — one key for both spellings.
        via_model = _cell(model=ModelSpec(name="sgm", overrides={"backend": "torch"}))
        assert cell_key(via_model) == cell_key(_cell(backend="torch"))

    def test_env_backend_changes_the_key(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        ambient = cell_key(_cell())
        monkeypatch.setenv(BACKEND_ENV_VAR, "torch")
        assert cell_key(_cell()) != ambient
        # ...and matches an explicit torch request: same computation.
        assert cell_key(_cell()) == cell_key(_cell(backend="torch:cpu"))

    def test_manifest_records_backend(self, tmp_path, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        store = ResultStore(tmp_path)
        cell = _cell(backend="torch")
        store.put(cell, {"auc": 0.5})
        manifest = store.manifest(cell)
        assert manifest.backend == "torch:cpu"
        assert manifest.cell["backend"] == "torch:cpu"

    def test_stale_schema_entry_is_a_tolerated_miss(self, tmp_path, monkeypatch):
        """A v1 (pre-backend) entry under the current key is ignored, never an error."""
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        store = ResultStore(tmp_path)
        cell = _cell()
        key = store.key(cell)
        path = store._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stale = {
            "manifest": {"key": key, "schema_version": 1, "cell": {}},
            "row": {"auc": 0.9},
        }
        path.write_text(json.dumps(stale))
        assert store.get(cell) is None
        assert store.stats.stale == 1


# ---------------------------------------------------------------------------
# precision identity in the experiment cache (torch-free: pure string work)
# ---------------------------------------------------------------------------
class TestCachePrecisionIdentity:
    def test_exact_cells_keep_their_pre_precision_keys(self, monkeypatch):
        """An explicit "exact" is the same work unit as no precision at all.

        This is what guarantees the precision seam never invalidated any
        pre-existing cache entry: the canonical form of an exact cell is
        byte-identical to what it was before precision existed.
        """
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert cell_key(_cell()) == cell_key(_cell(precision="exact"))
        assert cell_key(_cell(backend="torch")) == cell_key(
            _cell(backend="torch", precision="exact")
        )
        assert cell_key(_cell(backend="torch")) == cell_key(
            _cell(backend="torch:cpu:exact")
        )

    def test_fast_and_exact_cells_never_share_a_key(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        exact = cell_key(_cell(backend="torch"))
        fast = cell_key(_cell(backend="torch", precision="fast"))
        assert exact != fast
        assert (
            cell_backend_spec(_cell(backend="torch", precision="fast"))
            == "torch:cpu:fast"
        )

    def test_fast_spellings_are_one_work_unit(self, monkeypatch):
        """Cell field, spec suffix and model override all hash identically."""
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        fast = cell_key(_cell(backend="torch", precision="fast"))
        assert fast == cell_key(_cell(backend="torch:cpu:fast"))
        via_model = _cell(
            backend="torch",
            model=ModelSpec(name="sgm", overrides={"precision": "fast"}),
        )
        assert fast == cell_key(via_model)


# ---------------------------------------------------------------------------
# model plumbing: configs, make_model, explicit-numpy parity
# ---------------------------------------------------------------------------
class TestModelPlumbing:
    @pytest.mark.parametrize(
        "name",
        ["sgm", "advsgm", "advsgm-nodp", "deepwalk", "node2vec",
         "dpsgm", "dpasgm", "dpggan", "dpgvae", "gap", "dpar"],
    )
    def test_every_config_carries_backend_fields(self, name):
        from repro.api.registry import config_field_names

        fields = config_field_names(name)
        assert "backend" in fields and "device" in fields
        assert "precision" in fields

    def test_make_model_backend_kwarg_sets_config(self):
        model = repro.make_model("sgm", backend="numpy", device="cpu")
        assert model.config.backend == "numpy"
        assert model.config.device == "cpu"
        assert model.config.precision is None

    def test_make_model_precision_kwarg_sets_config(self):
        model = repro.make_model("sgm", backend="torch", precision="fast")
        assert model.config.precision == "fast"

    def test_numpy_fast_fails_at_bind_time(self):
        model = repro.make_model("sgm", precision="fast")  # numpy default
        with pytest.raises(BackendError, match="does not support precision"):
            model.fit(golden_graph())

    def test_unknown_backend_fails_at_bind_time(self):
        model = repro.make_model("sgm", backend="not-a-backend")
        with pytest.raises(BackendError, match="unknown backend"):
            model.fit(golden_graph())

    def test_explicit_numpy_is_bit_for_bit_the_default(self):
        graph = golden_graph()
        overrides = dict(GOLDEN_CASES["sgm"]["overrides"])
        default = repro.make_model("sgm", graph=graph, rng=11, **overrides).fit()
        explicit = repro.make_model(
            "sgm", graph=graph, rng=11, backend="numpy", **overrides
        ).fit()
        assert np.array_equal(default.embeddings_, explicit.embeddings_)

    def test_import_repro_does_not_import_torch(self):
        import subprocess
        import sys

        code = (
            "import sys; import repro; "
            "assert 'torch' not in sys.modules, 'torch was imported eagerly'; "
            "print('gate-ok')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
        )
        assert out.returncode == 0, out.stderr
        assert "gate-ok" in out.stdout


# ---------------------------------------------------------------------------
# torch parity (skips without torch; exercised by the CI torch job)
# ---------------------------------------------------------------------------
torch = pytest.importorskip("torch") if TORCH_AVAILABLE else None

#: Small-but-complete schedules for the numpy-vs-torch model parity sweep:
#: the four golden cases plus the remaining private trainers.
PARITY_CASES = dict(GOLDEN_CASES)
PARITY_CASES.update({
    "advsgm-nodp": {
        "model": "advsgm-nodp", "epsilon": None,
        "overrides": {"embedding_dim": 16, "num_epochs": 2,
                      "discriminator_steps": 2, "generator_steps": 1,
                      "batch_size": 8},
    },
    "dpsgm": {
        "model": "dpsgm", "epsilon": 6.0,
        "overrides": {"embedding_dim": 16, "num_epochs": 2,
                      "batches_per_epoch": 3, "batch_size": 8},
    },
    "dpasgm": {
        "model": "dpasgm", "epsilon": 6.0,
        "overrides": {"embedding_dim": 16, "num_epochs": 2,
                      "batches_per_epoch": 3, "batch_size": 8,
                      "generator_steps": 1},
    },
    "dpggan": {
        "model": "dpggan", "epsilon": 6.0,
        "overrides": {"embedding_dim": 16, "num_epochs": 2,
                      "batches_per_epoch": 3, "batch_size": 8},
    },
    "dpgvae": {
        "model": "dpgvae", "epsilon": 6.0,
        "overrides": {"feature_dim": 12, "embedding_dim": 16, "num_epochs": 2,
                      "batches_per_epoch": 3, "batch_size": 8},
    },
})


@pytest.mark.skipif(not TORCH_AVAILABLE, reason="torch not installed")
class TestTorchBackendOps:
    def _backend(self):
        return get_backend("torch", device="cpu")

    def test_spec_and_device(self):
        be = self._backend()
        assert be.name == "torch"
        assert be.spec == "torch:cpu"

    def test_roundtrip_and_gather(self):
        be = self._backend()
        x = np.random.default_rng(0).normal(size=(5, 3))
        native = be.asarray(x)
        assert np.allclose(be.to_numpy(native), x)
        idx = np.array([0, 2, 2])
        assert np.allclose(be.to_numpy(be.gather(native, idx)), x[idx])

    def test_parameter_does_not_alias_numpy(self):
        be = self._backend()
        x = np.zeros((2, 2))
        param = be.parameter(x)
        param += 1.0
        assert np.array_equal(x, np.zeros((2, 2)))

    def test_ops_match_numpy_reference(self):
        be = self._backend()
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(6, 4))
        bundle = rng.normal(size=(6, 5, 4))
        coeff = rng.normal(size=(6, 5))
        checks = [
            (be.rowwise_dot(be.asarray(a), be.asarray(b)), NUMPY_BACKEND.rowwise_dot(a, b)),
            (be.batched_rowwise_dot(be.asarray(a), be.asarray(bundle)),
             NUMPY_BACKEND.batched_rowwise_dot(a, bundle)),
            (be.weighted_rows_sum(be.asarray(coeff), be.asarray(bundle)),
             NUMPY_BACKEND.weighted_rows_sum(coeff, bundle)),
            (be.sigmoid(be.asarray(a)), NUMPY_BACKEND.sigmoid(a)),
            (be.log_sigmoid(be.asarray(a)), NUMPY_BACKEND.log_sigmoid(a)),
            (be.softmax(be.asarray(a), axis=1), NUMPY_BACKEND.softmax(a, axis=1)),
            (be.clip(be.asarray(a), -0.5, None), NUMPY_BACKEND.clip(a, -0.5, None)),
            (be.clip_rows(be.asarray(a * 3), 1.0), NUMPY_BACKEND.clip_rows(a * 3, 1.0)),
            (be.clip_global(be.asarray(a * 3), 1.0), NUMPY_BACKEND.clip_global(a * 3, 1.0)),
            (be.sum(be.asarray(a), axis=0), NUMPY_BACKEND.sum(a, axis=0)),
            (be.mean(be.asarray(a)), NUMPY_BACKEND.mean(a)),
        ]
        for got, want in checks:
            assert np.allclose(be.to_numpy(got), np.asarray(want), rtol=1e-12, atol=1e-12)

    def test_index_add_accumulates_duplicates(self):
        be = self._backend()
        target = be.asarray(np.zeros((4, 2)))
        rows = be.asarray(np.ones((3, 2)))
        be.index_add_(target, np.array([1, 1, 3]), rows)
        expected = np.zeros((4, 2)); expected[1] = 2.0; expected[3] = 1.0
        assert np.allclose(be.to_numpy(target), expected)

    def test_noise_stream_identical_to_numpy(self):
        """Same seed => the same Gaussian noise on every backend."""
        be = self._backend()
        torch_draw = be.to_numpy(be.gaussian(np.random.default_rng(9), 0.0, 5.0, (4, 3)))
        numpy_draw = NUMPY_BACKEND.gaussian(np.random.default_rng(9), 0.0, 5.0, (4, 3))
        assert np.array_equal(torch_draw, numpy_draw)


@pytest.mark.skipif(not TORCH_AVAILABLE, reason="torch not installed")
class TestTorchModelParity:
    """NumPy-vs-torch embeddings and metrics at rtol 1e-5, all trainers."""

    RTOL = 1e-5
    ATOL = 1e-8

    @pytest.mark.parametrize("name", sorted(PARITY_CASES))
    def test_embeddings_and_scores_match(self, name):
        case = PARITY_CASES[name]
        graph = golden_graph()
        models = {}
        for backend in ("numpy", "torch"):
            models[backend] = repro.make_model(
                case["model"],
                epsilon=case["epsilon"],
                graph=graph,
                rng=77,
                backend=backend,
                **case["overrides"],
            ).fit()
        emb_np = models["numpy"].embeddings_
        emb_torch = models["torch"].embeddings_
        assert isinstance(emb_torch, np.ndarray)  # public surface stays numpy
        assert emb_np.shape == emb_torch.shape
        scale = np.maximum(np.abs(emb_np), 1.0)
        assert np.allclose(emb_np, emb_torch, rtol=self.RTOL, atol=self.ATOL * scale.max()), (
            f"{name}: max deviation "
            f"{np.max(np.abs(emb_np - emb_torch) / scale):.3e} exceeds rtol"
        )
        pairs = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.int64)
        assert np.allclose(
            models["numpy"].score_edges(pairs),
            models["torch"].score_edges(pairs),
            rtol=self.RTOL, atol=self.ATOL,
        )

    def test_noise_seeding_determinism_per_backend(self):
        """Two torch runs with one seed are identical to each other."""
        case = PARITY_CASES["advsgm"]
        graph = golden_graph()
        runs = [
            repro.make_model(
                case["model"], epsilon=case["epsilon"], graph=graph, rng=5,
                backend="torch", **case["overrides"],
            ).fit().embeddings_
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_privacy_accounting_is_backend_independent(self):
        """Same seed => identical accountant trajectory under numpy and torch."""
        case = PARITY_CASES["dpsgm"]
        graph = golden_graph()
        spends = {}
        for backend in ("numpy", "torch"):
            model = repro.make_model(
                case["model"], epsilon=case["epsilon"], graph=graph, rng=3,
                backend=backend, **case["overrides"],
            ).fit()
            spent = model.privacy_spent()
            spends[backend] = (spent.epsilon, spent.delta, model.stopped_early)
        assert spends["numpy"] == spends["torch"]


# ---------------------------------------------------------------------------
# fast precision: float32 device path (skips without torch; CI torch job)
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not TORCH_AVAILABLE, reason="torch not installed")
class TestTorchFastPath:
    """The float32 fast path: identity, determinism, statistical parity.

    Fast mode trades bit-level parity for throughput, so unlike the exact
    torch rows it is held to *statistical* quality bars — downstream task
    metrics within tolerance of the exact run — plus strict determinism
    (same seed, same fast run, twice).
    """

    def _backend(self):
        return get_backend("torch", device="cpu", precision="fast")

    def test_spec_dtype_and_instance_identity(self):
        be = self._backend()
        assert be.precision == "fast"
        assert be.spec == "torch:cpu:fast"
        assert be.asarray(np.zeros((2, 2))).dtype == torch.float32
        # One cached instance per (name, device, precision); fast and exact
        # never alias.
        assert be is get_backend("torch:cpu:fast")
        assert be is not get_backend("torch", device="cpu")

    def test_fast_runs_are_deterministic(self):
        graph = golden_graph()
        overrides = dict(GOLDEN_CASES["sgm"]["overrides"])
        runs = [
            repro.make_model(
                "sgm", graph=graph, rng=13,
                backend="torch", precision="fast", **overrides,
            ).fit().embeddings_
            for _ in range(2)
        ]
        assert isinstance(runs[0], np.ndarray)  # public surface stays numpy
        assert np.array_equal(runs[0], runs[1])
        assert np.all(np.isfinite(runs[0]))

    def test_fast_loss_history_is_finite_floats(self):
        graph = golden_graph()
        overrides = dict(GOLDEN_CASES["sgm"]["overrides"])
        model = repro.make_model(
            "sgm", graph=graph, rng=13,
            backend="torch", precision="fast", **overrides,
        ).fit()
        losses = model.history.get("loss")
        assert len(losses) == model.config.num_epochs
        assert all(isinstance(v, float) and np.isfinite(v) for v in losses)

    def _fit_sgm(self, graph, precision, rng=29):
        return repro.make_model(
            "sgm",
            graph=graph,
            rng=rng,
            backend="torch",
            precision=precision,
            embedding_dim=32,
            num_epochs=15,
            batches_per_epoch=10,
            batch_size=64,
        ).fit()

    def test_statistical_parity_link_prediction(self):
        """Fast AUC within 0.05 of exact on the same held-out split."""
        from repro.evals.link_prediction import LinkPredictionTask
        from repro.graph.datasets import load_dataset

        graph = load_dataset("ppi", scale=0.4, seed=29)
        task = LinkPredictionTask(graph, test_fraction=0.1, rng=29)
        aucs = {
            precision: task.evaluate(
                self._fit_sgm(task.train_graph, precision).embeddings_
            ).auc
            for precision in ("exact", "fast")
        }
        assert aucs["exact"] > 0.6  # the exact run must itself have signal
        assert abs(aucs["fast"] - aucs["exact"]) < 0.05

    def test_statistical_parity_node_clustering(self):
        """Fast NMI within 0.1 of exact on a labelled dataset."""
        from repro.evals.clustering import NodeClusteringTask
        from repro.graph.datasets import load_dataset

        graph = load_dataset("wiki", scale=0.15, seed=29)
        task = NodeClusteringTask(graph)
        nmis = {
            precision: task.evaluate(
                self._fit_sgm(graph, precision).embeddings_
            ).normalized_mutual_information
            for precision in ("exact", "fast")
        }
        assert abs(nmis["fast"] - nmis["exact"]) < 0.1
